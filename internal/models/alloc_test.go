package models

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

// TestStepAllocations asserts every workload's Step is allocation-free in
// steady state: the Into-style scratch threaded through the layers, the
// losses and the minibatch sampling must all reuse their buffers once
// warm. This is the property that keeps TrainIteration's allocs/op flat —
// the trainer's remaining per-iteration allocations live in the
// collectives, not the models.
func TestStepAllocations(t *testing.T) {
	cases := []struct {
		name string
		fn   func() interface {
			Params() []*nn.Param
			Step(*rng.RNG) float64
		}
		max float64 // tolerated allocs/op (0 for fully threaded models)
	}{
		{"mlp", func() interface {
			Params() []*nn.Param
			Step(*rng.RNG) float64
		} {
			return NewMLP(DefaultMLPConfig()).NewModel()
		}, 0},
		{"vision", func() interface {
			Params() []*nn.Param
			Step(*rng.RNG) float64
		} {
			return NewVision(DefaultVisionConfig()).NewModel()
		}, 0},
		{"langmodel", func() interface {
			Params() []*nn.Param
			Step(*rng.RNG) float64
		} {
			return NewText(DefaultTextConfig()).NewModel()
		}, 0},
		{"recsys", func() interface {
			Params() []*nn.Param
			Step(*rng.RNG) float64
		} {
			return NewRecsys(DefaultRecsysConfig()).NewModel()
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.fn()
			r := rng.New(3)
			// params is hoisted exactly as the trainer hoists it: Params()
			// itself builds a fresh slice per call and is not on the
			// per-iteration path.
			params := m.Params()
			for i := 0; i < 3; i++ { // warm the scratch buffers
				nn.ZeroGrads(params)
				m.Step(r)
			}
			allocs := testing.AllocsPerRun(10, func() {
				nn.ZeroGrads(params)
				m.Step(r)
			})
			if allocs > tc.max {
				t.Errorf("%s Step: %v allocs/op after warmup, want <= %v", tc.name, allocs, tc.max)
			}
		})
	}
}
