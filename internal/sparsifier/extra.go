package sparsifier

import (
	"math"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/topk"
)

// DGC is the sampling-based top-k selection of Deep Gradient Compression
// (Lin et al. [23]): estimate the top-k threshold from a random sample of
// the gradients (cheap), select everything above it, and fall back to an
// exact top-k *within the over-selected candidates* when the estimate lets
// too many through. Like Top-k it is a local scheme, so it still incurs
// gradient build-up; its value here is as the classical low-cost selection
// baseline the paper's related work discusses.
type DGC struct {
	// SampleRatio is the fraction of gradients sampled for threshold
	// estimation (DGC uses 0.01 at scale; default 0.05 here because the
	// simulated models are small).
	SampleRatio float64

	// Reusable per-worker scratch: sample and candidate-value buffers, the
	// threshold-scan index buffer, and the top-k selection scratch.
	sample []float64
	cand   []float64
	idx    []int
	out    []int
	s      topk.Scratch
}

// Name implements Sparsifier.
func (d *DGC) Name() string { return "dgc" }

// Select implements Sparsifier.
func (d *DGC) Select(ctx *Ctx, grad []float64) []int {
	ng := len(grad)
	k := ctx.TargetK(ng)
	if k >= ng {
		return topk.HeapTopKInto(grad, k, &d.s)
	}
	ratio := d.SampleRatio
	if ratio <= 0 {
		ratio = 0.05
	}
	sampleN := int(float64(ng) * ratio)
	if sampleN < k {
		sampleN = k // the sample must be able to express the quantile
	}
	if sampleN > ng {
		sampleN = ng
	}
	// Deterministic sample seeded by (iteration, rank): stride sampling
	// with a rotating offset is cheap and unbiased enough for a threshold
	// estimate.
	r := rng.New(uint64(ctx.Iteration)*31 + uint64(ctx.Rank) + 1)
	if cap(d.sample) < sampleN {
		d.sample = make([]float64, sampleN)
	}
	sample := d.sample[:sampleN]
	stride := ng / sampleN
	if stride < 1 {
		stride = 1
	}
	off := r.Intn(stride)
	for i := 0; i < sampleN; i++ {
		sample[i] = grad[(off+i*stride)%ng]
	}
	// Threshold = |sample|'s k·ratio-th largest magnitude.
	sk := int(math.Ceil(float64(k) * float64(sampleN) / float64(ng)))
	if sk < 1 {
		sk = 1
	}
	if sk > sampleN {
		sk = sampleN
	}
	threshold := topk.KthAbsInto(sample, sk, &d.s)
	d.idx = topk.AboveThresholdInto(grad, threshold, d.idx)
	idx := d.idx
	if len(idx) <= k*2 {
		return idx
	}
	// Over-selected: exact top-k among the candidates only.
	if cap(d.cand) < len(idx) {
		d.cand = make([]float64, len(idx))
	}
	cand := d.cand[:len(idx)]
	for i, ix := range idx {
		cand[i] = grad[ix]
	}
	local := topk.HeapTopKInto(cand, k, &d.s)
	if cap(d.out) < len(local) {
		d.out = make([]int, len(local))
	}
	out := d.out[:len(local)]
	for i, li := range local {
		out[i] = idx[li]
	}
	return out
}

// GaussianK estimates the top-k threshold by fitting N(0, σ²) to the
// gradients and thresholding at the two-sided quantile (Shi et al. [30],
// "Understanding Top-k Sparsification"). O(n_g) per iteration with a tiny
// constant; density accuracy depends on how Gaussian the gradients are —
// another "unpredictable density" scheme for Table 1-style comparisons.
type GaussianK struct{}

// Name implements Sparsifier.
func (GaussianK) Name() string { return "gaussiank" }

// Select implements Sparsifier.
func (GaussianK) Select(ctx *Ctx, grad []float64) []int {
	th := stats.GaussianThreshold(grad, ctx.Density)
	return topk.AboveThreshold(grad, th)
}
