// Package sparsifier defines the gradient-sparsifier contract shared by all
// compression schemes in this reproduction and implements the baselines the
// paper compares against: Top-k, CLT-k, hard-threshold, SIDCo, and random-k.
//
// A Sparsifier looks at one worker's error-compensated gradient vector
// (line 6 of Algorithm 1) and returns the indices this worker wants to
// transmit. Everything downstream — index all-gather, value all-reduce,
// error feedback — is the trainer's job and identical for every scheme.
package sparsifier

import (
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
	"repro/internal/topk"
)

// Layer describes one parameter tensor's slice [Start, End) of the flat
// gradient vector. The paper calls these "layers" (its footnote 2: each
// weight or bias tensor is one layer).
type Layer struct {
	Name  string
	Start int
	End   int
}

// Size returns the number of gradients in the layer.
func (l Layer) Size() int { return l.End - l.Start }

// Ctx carries the per-iteration context a sparsifier may use. Broadcast
// fields are nil when running outside a cluster (single process); schemes
// that need them degrade to local behaviour in that case.
type Ctx struct {
	Rank      int     // this worker's rank in [0, NWorkers)
	NWorkers  int     // cluster size (>= 1)
	Iteration int     // global iteration number t
	Density   float64 // user-set density d = k / n_g
	Layers    []Layer // model layer boundaries covering [0, n_g)

	// BroadcastInts distributes root's data to all ranks (collective: all
	// ranks must call). Nil in single-process use.
	BroadcastInts func(root int, data []int) []int
	// BroadcastIntsNested is the [][]int variant used for bin lists.
	BroadcastIntsNested func(root int, data [][]int) [][]int

	// Isolate measures fn's wall time under the trainer's timing gate: a
	// cluster-wide mutex that keeps other workers' compute off the CPU
	// while fn runs, so per-worker times are contention-free even though
	// the simulator hosts all workers on one machine. fn must not call a
	// collective (that would deadlock the gate). Nil: time inline.
	Isolate func(fn func()) time.Duration
}

// Isolated runs fn under ctx.Isolate when available, else times it inline.
func (c *Ctx) Isolated(fn func()) time.Duration {
	if c.Isolate != nil {
		return c.Isolate(fn)
	}
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

// TargetK returns the user-requested number of selected gradients
// k = round(d · n_g), at least 1 for any positive density.
func (c *Ctx) TargetK(ng int) int {
	k := int(math.Round(c.Density * float64(ng)))
	if k < 1 && c.Density > 0 {
		k = 1
	}
	if k > ng {
		k = ng
	}
	return k
}

// Sparsifier selects gradient indices for one worker.
type Sparsifier interface {
	// Name identifies the scheme in reports.
	Name() string
	// Select returns the indices of the gradients this worker transmits.
	// grad is the worker's error-compensated accumulated gradient (acc in
	// Algorithm 1). The returned slice may alias the sparsifier's internal
	// scratch: it is valid (and may be reordered in place by the caller)
	// only until the next Select call on the same instance. Callers that
	// need to retain it longer must copy.
	Select(ctx *Ctx, grad []float64) []int
}

// Factory builds one sparsifier instance per worker. Stateful schemes
// (DEFT's cached partition, SIDCo's fitted state) need per-worker
// instances.
type Factory func() Sparsifier

// ---------------------------------------------------------------- Top-k --

// TopK is the classical local top-k sparsifier: every worker selects its k
// largest-magnitude gradients from the entire vector. It suffers gradient
// build-up (paper §1, Fig 1) because per-worker index sets differ. One
// instance per worker: the selection scratch is retained across iterations,
// so the steady-state Select performs zero heap allocations.
type TopK struct {
	s topk.Scratch
}

// NewTopK returns a fresh instance (one per worker).
func NewTopK() *TopK { return &TopK{} }

// Name implements Sparsifier.
func (*TopK) Name() string { return "topk" }

// Select implements Sparsifier.
func (t *TopK) Select(ctx *Ctx, grad []float64) []int {
	return topk.HeapTopKInto(grad, ctx.TargetK(len(grad)), &t.s)
}

// ---------------------------------------------------------------- CLT-k --

// CLTK is the cyclic local top-k sparsifier (Chen et al. [13]): at
// iteration t the leader worker t mod n selects its local top-k and
// broadcasts the indices; every worker then transmits exactly those
// indices. No build-up, but non-leader workers idle during selection.
// One instance per worker (it records its last local selection time and
// owns the selection scratch).
type CLTK struct {
	lastSelection time.Duration
	s             topk.Scratch
}

// Name implements Sparsifier.
func (c *CLTK) Name() string { return "cltk" }

// Select implements Sparsifier.
func (c *CLTK) Select(ctx *Ctx, grad []float64) []int {
	leader := 0
	if ctx.NWorkers > 0 {
		leader = ctx.Iteration % ctx.NWorkers
	}
	var local []int
	c.lastSelection = 0
	if ctx.Rank == leader {
		c.lastSelection = ctx.Isolated(func() {
			local = topk.HeapTopKInto(grad, ctx.TargetK(len(grad)), &c.s)
		})
	}
	if ctx.BroadcastInts == nil {
		// Single-process: this worker is its own leader.
		if local == nil {
			local = topk.HeapTopKInto(grad, ctx.TargetK(len(grad)), &c.s)
		}
		return local
	}
	return ctx.BroadcastInts(leader, local)
}

// LastOverhead reports the leader's local top-k wall time (the scheme's
// whole-cluster selection cost: everyone else idles) and zero partition
// overhead, excluding the broadcast rendezvous wait — see the matching
// method on core.DEFT for why waits are excluded in the simulator.
func (c *CLTK) LastOverhead() (partition, selection time.Duration) {
	return 0, c.lastSelection
}

// ------------------------------------------------------- Hard threshold --

// HardThreshold selects every gradient with |g| >= Threshold (Sahu et al.
// [27]). O(n_g) selection, but the threshold is a hyperparameter that must
// be tuned per model and dataset, and the realised density is
// unpredictable — both weaknesses Table 1 records.
type HardThreshold struct {
	Threshold float64

	idx []int // selection scratch
}

// Name implements Sparsifier.
func (h *HardThreshold) Name() string { return "hardthreshold" }

// Select implements Sparsifier.
func (h *HardThreshold) Select(ctx *Ctx, grad []float64) []int {
	h.idx = topk.AboveThresholdInto(grad, h.Threshold, h.idx)
	return h.idx
}

// TuneHardThreshold picks the threshold that yields the target density on a
// sample gradient vector — the "strict hyperparameter tuning" the paper
// says this scheme requires before training.
func TuneHardThreshold(sample []float64, density float64) *HardThreshold {
	k := int(math.Round(density * float64(len(sample))))
	if k < 1 {
		k = 1
	}
	if k > len(sample) {
		k = len(sample)
	}
	return &HardThreshold{Threshold: topk.KthAbs(sample, k)}
}

// ---------------------------------------------------------------- SIDCo --

// SIDCo estimates a per-iteration threshold by fitting a sparsity-inducing
// (exponential) distribution to the gradient magnitudes (Abdelmoniem et
// al. [24]) with multi-stage refinement. Selection itself is O(n_g); the
// fitting is the "very high additional overhead" in Table 1.
type SIDCo struct {
	// Stages is the number of fitting refinement stages (the reference
	// implementation uses 3 for the exponential variant).
	Stages int

	fit stats.ExpFitScratch // fitting-stage filter buffers
	idx []int               // selection scratch
}

// Name implements Sparsifier.
func (s *SIDCo) Name() string { return "sidco" }

// Select implements Sparsifier.
func (s *SIDCo) Select(ctx *Ctx, grad []float64) []int {
	stages := s.Stages
	if stages <= 0 {
		stages = 3
	}
	th := stats.MultiStageExpThresholdScratch(grad, ctx.Density, stages, &s.fit)
	s.idx = topk.AboveThresholdInto(grad, th, s.idx)
	return s.idx
}

// ---------------------------------------------------------------- Rand-k --

// RandK selects k indices uniformly at random using a deterministic hash of
// (iteration). All workers select the same indices, so it has no build-up;
// it ignores gradient magnitudes entirely and serves as the "no
// significance" control in ablations.
type RandK struct{}

// Name implements Sparsifier.
func (RandK) Name() string { return "randk" }

// Select implements Sparsifier.
func (RandK) Select(ctx *Ctx, grad []float64) []int {
	ng := len(grad)
	k := ctx.TargetK(ng)
	// Deterministic permutation seeded by iteration only, so all workers
	// agree without communication.
	seed := uint64(ctx.Iteration)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	idx := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	x := seed
	for len(idx) < k {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		i := int(x % uint64(ng))
		if _, ok := seen[i]; ok {
			continue
		}
		seen[i] = struct{}{}
		idx = append(idx, i)
	}
	return idx
}

// ---------------------------------------------------------------- misc --

// ValidateLayers checks that layers tile [0, ng) contiguously without gaps
// or overlap. Sparsifiers that rely on layer structure call this once.
func ValidateLayers(layers []Layer, ng int) error {
	pos := 0
	for i, l := range layers {
		if l.Start != pos {
			return fmt.Errorf("sparsifier: layer %d (%s) starts at %d, want %d", i, l.Name, l.Start, pos)
		}
		if l.End < l.Start {
			return fmt.Errorf("sparsifier: layer %d (%s) has negative size", i, l.Name)
		}
		pos = l.End
	}
	if pos != ng {
		return fmt.Errorf("sparsifier: layers cover [0,%d), want [0,%d)", pos, ng)
	}
	return nil
}
