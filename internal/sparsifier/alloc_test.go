package sparsifier_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sparsifier"
)

// syntheticLayers builds a layer list covering ng gradients with uneven
// layer sizes, mimicking a real model layout.
func syntheticLayers(ng int) []sparsifier.Layer {
	sizes := []int{ng / 2, ng / 4, ng / 8, ng - ng/2 - ng/4 - ng/8}
	layers := make([]sparsifier.Layer, 0, len(sizes))
	pos := 0
	for i, s := range sizes {
		layers = append(layers, sparsifier.Layer{Name: string(rune('a' + i)), Start: pos, End: pos + s})
		pos += s
	}
	return layers
}

func syntheticGrad(ng int) []float64 {
	g := make([]float64, ng)
	for i := range g {
		g[i] = float64((i*2654435761)%1000)/1000 - 0.5
	}
	return g
}

// TestSteadyStateSelectZeroAllocs asserts the PR's acceptance criterion:
// the steady-state Select path of the TopK and DEFT sparsifiers performs
// zero heap allocations per call (single-process ctx, warmed scratch).
func TestSteadyStateSelectZeroAllocs(t *testing.T) {
	const ng = 40000
	grad := syntheticGrad(ng)
	ctx := &sparsifier.Ctx{
		Rank:     0,
		NWorkers: 4,
		Density:  0.01,
		Layers:   syntheticLayers(ng),
	}

	cases := []struct {
		name string
		sp   sparsifier.Sparsifier
	}{
		{"topk", sparsifier.NewTopK()},
		{"deft", core.NewDefault()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Warm the instance scratch (partition cache, heap buffers,
			// output slices) before measuring.
			for i := 0; i < 3; i++ {
				ctx.Iteration = i
				c.sp.Select(ctx, grad)
			}
			allocs := testing.AllocsPerRun(20, func() {
				ctx.Iteration++
				c.sp.Select(ctx, grad)
			})
			if allocs != 0 {
				t.Errorf("%s steady-state Select allocates %v per call, want 0", c.name, allocs)
			}
		})
	}
}

// TestScratchSelectMatchesFresh verifies that scratch reuse does not change
// what is selected: a long-lived instance must pick the same index set as a
// fresh instance at every iteration.
func TestScratchSelectMatchesFresh(t *testing.T) {
	const ng = 10000
	grad := syntheticGrad(ng)
	layers := syntheticLayers(ng)
	warm := core.NewDefault()
	for it := 0; it < 8; it++ {
		ctx := &sparsifier.Ctx{Rank: 0, NWorkers: 4, Iteration: it, Density: 0.02, Layers: layers}
		got := append([]int(nil), warm.Select(ctx, grad)...)
		want := core.NewDefault().Select(ctx, grad)
		if len(got) != len(want) {
			t.Fatalf("iteration %d: warm selected %d, fresh %d", it, len(got), len(want))
		}
		seen := make(map[int]bool, len(want))
		for _, i := range want {
			seen[i] = true
		}
		for _, i := range got {
			if !seen[i] {
				t.Fatalf("iteration %d: warm instance selected %d, not in fresh selection", it, i)
			}
		}
	}
}
