package sparsifier

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/rng"
)

func randGrad(seed uint64, n int) []float64 {
	r := rng.New(seed)
	g := make([]float64, n)
	for i := range g {
		g[i] = r.Norm()
	}
	return g
}

func TestTargetK(t *testing.T) {
	cases := []struct {
		d    float64
		ng   int
		want int
	}{
		{0.01, 1000, 10},
		{0.001, 100, 1}, // floor to 1 for positive density
		{0, 100, 0},
		{1, 50, 50},
		{2, 50, 50}, // clamp to ng
	}
	for _, c := range cases {
		ctx := &Ctx{Density: c.d}
		if got := ctx.TargetK(c.ng); got != c.want {
			t.Errorf("TargetK(d=%v, ng=%d) = %d, want %d", c.d, c.ng, got, c.want)
		}
	}
}

func TestTopKSelectsExactlyK(t *testing.T) {
	g := randGrad(1, 1000)
	ctx := &Ctx{Density: 0.05}
	idx := NewTopK().Select(ctx, g)
	if len(idx) != 50 {
		t.Fatalf("selected %d, want 50", len(idx))
	}
	// All selected magnitudes >= all unselected magnitudes.
	sel := map[int]bool{}
	minSel := math.Inf(1)
	for _, i := range idx {
		sel[i] = true
		if a := math.Abs(g[i]); a < minSel {
			minSel = a
		}
	}
	for i, v := range g {
		if !sel[i] && math.Abs(v) > minSel {
			t.Fatalf("unselected |g[%d]|=%v exceeds selected min %v", i, math.Abs(v), minSel)
		}
	}
}

func TestCLTKAllRanksAgree(t *testing.T) {
	const n = 4
	grads := make([][]float64, n)
	for r := range grads {
		grads[r] = randGrad(uint64(r+10), 500)
	}
	cluster := comm.NewCluster(n)
	results := make([][]int, n)
	const iter = 6 // leader = 6 % 4 = 2
	cluster.Run(func(cm *comm.Comm) {
		ctx := &Ctx{
			Rank: cm.Rank(), NWorkers: n, Iteration: iter, Density: 0.02,
			BroadcastInts: cm.BroadcastInts,
		}
		results[cm.Rank()] = (&CLTK{}).Select(ctx, grads[cm.Rank()])
	})
	// Every rank must hold the leader's indices.
	leaderLocal := NewTopK().Select(&Ctx{Density: 0.02}, grads[2])
	sort.Ints(leaderLocal)
	for r := range results {
		got := append([]int(nil), results[r]...)
		sort.Ints(got)
		if len(got) != len(leaderLocal) {
			t.Fatalf("rank %d: %d indices, want %d", r, len(got), len(leaderLocal))
		}
		for i := range got {
			if got[i] != leaderLocal[i] {
				t.Fatalf("rank %d selection differs from leader", r)
			}
		}
	}
}

func TestCLTKLeaderRotates(t *testing.T) {
	const n = 3
	grads := make([][]float64, n)
	for r := range grads {
		grads[r] = randGrad(uint64(r+30), 400)
	}
	perIter := make([][]int, n)
	for iter := 0; iter < n; iter++ {
		cluster := comm.NewCluster(n)
		results := make([][]int, n)
		cluster.Run(func(cm *comm.Comm) {
			ctx := &Ctx{Rank: cm.Rank(), NWorkers: n, Iteration: iter, Density: 0.05,
				BroadcastInts: cm.BroadcastInts}
			results[cm.Rank()] = (&CLTK{}).Select(ctx, grads[cm.Rank()])
		})
		perIter[iter] = results[0]
		// Cross-check directly against the expected leader's local top-k.
		want := NewTopK().Select(&Ctx{Density: 0.05}, grads[iter%n])
		sort.Ints(want)
		got := append([]int(nil), results[0]...)
		sort.Ints(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: selection not from leader %d", iter, iter%n)
			}
		}
	}
}

func TestCLTKSingleProcessFallback(t *testing.T) {
	g := randGrad(2, 300)
	ctx := &Ctx{Rank: 0, NWorkers: 1, Density: 0.1}
	idx := (&CLTK{}).Select(ctx, g)
	if len(idx) != 30 {
		t.Fatalf("selected %d, want 30", len(idx))
	}
}

func TestHardThresholdSelectsAboveOnly(t *testing.T) {
	g := []float64{0.5, -2, 3, 0.1}
	h := &HardThreshold{Threshold: 1}
	idx := h.Select(&Ctx{}, g)
	if len(idx) != 2 {
		t.Fatalf("selected %v", idx)
	}
	for _, i := range idx {
		if math.Abs(g[i]) < 1 {
			t.Fatalf("selected |g[%d]| below threshold", i)
		}
	}
}

func TestTuneHardThreshold(t *testing.T) {
	g := randGrad(3, 10000)
	h := TuneHardThreshold(g, 0.01)
	idx := h.Select(&Ctx{}, g)
	// Tuned on the same vector, should select ~k (ties can add a few).
	if len(idx) < 100 || len(idx) > 110 {
		t.Fatalf("tuned threshold selected %d, want ~100", len(idx))
	}
}

func TestTuneHardThresholdEdges(t *testing.T) {
	g := []float64{1, 2, 3}
	if h := TuneHardThreshold(g, 0.0001); h.Threshold != 3 {
		t.Fatalf("tiny density should tune to max |g|, got %v", h.Threshold)
	}
	if h := TuneHardThreshold(g, 1); h.Threshold != 1 {
		t.Fatalf("density 1 should tune to min |g|, got %v", h.Threshold)
	}
}

func TestSIDCoApproximatesDensity(t *testing.T) {
	// On near-exponential magnitudes SIDCo should land near the target.
	r := rng.New(4)
	g := make([]float64, 100000)
	for i := range g {
		g[i] = r.Exp()
		if r.Float64() < 0.5 {
			g[i] = -g[i]
		}
	}
	s := &SIDCo{Stages: 3}
	idx := s.Select(&Ctx{Density: 0.01}, g)
	frac := float64(len(idx)) / float64(len(g))
	if frac < 0.003 || frac > 0.03 {
		t.Fatalf("SIDCo density %v, want within ~3x of 0.01", frac)
	}
}

func TestSIDCoDensityUnpredictableOnGaussian(t *testing.T) {
	// The paper's Table 1 flags threshold methods as having unpredictable
	// density: on non-exponential data the realised density deviates.
	g := randGrad(5, 100000)
	s := &SIDCo{}
	idx := s.Select(&Ctx{Density: 0.01}, g)
	frac := float64(len(idx)) / float64(len(g))
	if frac == 0.01 {
		t.Fatal("suspiciously exact density")
	}
}

func TestRandKDeterministicAcrossWorkers(t *testing.T) {
	g1 := randGrad(6, 1000)
	g2 := randGrad(7, 1000)
	ctx1 := &Ctx{Rank: 0, NWorkers: 4, Iteration: 5, Density: 0.02}
	ctx2 := &Ctx{Rank: 3, NWorkers: 4, Iteration: 5, Density: 0.02}
	a := (RandK{}).Select(ctx1, g1)
	b := (RandK{}).Select(ctx2, g2)
	sort.Ints(a)
	sort.Ints(b)
	if len(a) != len(b) {
		t.Fatal("randk selections differ in size across workers")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("randk must agree across workers at the same iteration")
		}
	}
	// Different iterations should differ.
	c := (RandK{}).Select(&Ctx{Iteration: 6, Density: 0.02}, g1)
	sort.Ints(c)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("randk identical across iterations")
	}
}

func TestRandKNoDuplicates(t *testing.T) {
	f := func(iter uint16) bool {
		g := make([]float64, 200)
		ctx := &Ctx{Iteration: int(iter), Density: 0.25}
		idx := (RandK{}).Select(ctx, g)
		if len(idx) != 50 {
			return false
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= 200 || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateLayers(t *testing.T) {
	good := []Layer{{Start: 0, End: 5}, {Start: 5, End: 9}}
	if err := ValidateLayers(good, 9); err != nil {
		t.Fatalf("valid layers rejected: %v", err)
	}
	bad := [][]Layer{
		{{Start: 1, End: 5}},                     // gap at 0
		{{Start: 0, End: 5}, {Start: 6, End: 9}}, // gap
		{{Start: 0, End: 5}, {Start: 4, End: 9}}, // overlap
		{{Start: 0, End: 5}},                     // short
	}
	for i, layers := range bad {
		if err := ValidateLayers(layers, 9); err == nil {
			t.Errorf("bad layers %d accepted", i)
		}
	}
	// Negative size.
	if err := ValidateLayers([]Layer{{Start: 0, End: -1}}, 0); err == nil {
		t.Error("negative layer accepted")
	}
}

func TestLayerSize(t *testing.T) {
	if (Layer{Start: 3, End: 10}).Size() != 7 {
		t.Fatal("Layer.Size wrong")
	}
}

func BenchmarkTopKSelect_1M(b *testing.B) {
	g := randGrad(8, 1<<20)
	ctx := &Ctx{Density: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewTopK().Select(ctx, g)
	}
}

func BenchmarkSIDCoSelect_1M(b *testing.B) {
	g := randGrad(9, 1<<20)
	ctx := &Ctx{Density: 0.01}
	s := &SIDCo{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(ctx, g)
	}
}
