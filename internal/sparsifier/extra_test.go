package sparsifier

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDGCSelectsApproximatelyK(t *testing.T) {
	g := randGrad(21, 100000)
	d := &DGC{SampleRatio: 0.05}
	idx := d.Select(&Ctx{Density: 0.01, Iteration: 3}, g)
	k := 1000
	if len(idx) < k/3 || len(idx) > 3*k {
		t.Fatalf("DGC selected %d, want within 3x of %d", len(idx), k)
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= len(g) || seen[i] {
			t.Fatalf("bad index %d", i)
		}
		seen[i] = true
	}
}

func TestDGCSelectsLargeMagnitudes(t *testing.T) {
	// Plant a few huge entries; DGC must catch them.
	g := randGrad(22, 50000)
	planted := []int{7, 999, 25000, 49999}
	for _, i := range planted {
		g[i] = 100
	}
	d := &DGC{}
	idx := d.Select(&Ctx{Density: 0.01, Iteration: 1}, g)
	got := map[int]bool{}
	for _, i := range idx {
		got[i] = true
	}
	for _, i := range planted {
		if !got[i] {
			t.Fatalf("planted index %d missed", i)
		}
	}
}

func TestDGCFallbackCapsOverselection(t *testing.T) {
	// Heavy-tailed gradients make the sample threshold let too many
	// through; the candidate top-k fallback must cap the result near k.
	r := rng.New(23)
	g := make([]float64, 100000)
	for i := range g {
		// Mixture: mostly near-identical magnitudes defeat thresholding.
		g[i] = 1 + 0.001*r.Norm()
	}
	d := &DGC{}
	idx := d.Select(&Ctx{Density: 0.01}, g)
	if len(idx) > 2*1000 {
		t.Fatalf("fallback did not cap: %d selected", len(idx))
	}
}

func TestDGCFullDensity(t *testing.T) {
	g := randGrad(24, 100)
	d := &DGC{}
	idx := d.Select(&Ctx{Density: 1}, g)
	if len(idx) != 100 {
		t.Fatalf("full density selected %d", len(idx))
	}
}

func TestGaussianKOnGaussianData(t *testing.T) {
	g := randGrad(25, 200000)
	idx := (GaussianK{}).Select(&Ctx{Density: 0.01}, g)
	frac := float64(len(idx)) / float64(len(g))
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("GaussianK density %v on Gaussian data, want ~0.01", frac)
	}
}

func TestGaussianKDriftsOnNonGaussian(t *testing.T) {
	// Exponential-magnitude data is heavier-tailed than Gaussian: the
	// Gaussian fit over-thresholds (the "unpredictable density" column).
	r := rng.New(26)
	g := make([]float64, 100000)
	for i := range g {
		g[i] = r.Exp()
	}
	idx := (GaussianK{}).Select(&Ctx{Density: 0.01}, g)
	frac := float64(len(idx)) / float64(len(g))
	if math.Abs(frac-0.01) < 0.001 {
		t.Fatalf("suspiciously exact density %v on non-Gaussian data", frac)
	}
}

func TestGaussianKZeroGradient(t *testing.T) {
	g := make([]float64, 100)
	idx := (GaussianK{}).Select(&Ctx{Density: 0.1}, g)
	// σ = 0 → threshold 0 → everything selected; degenerate but defined.
	if len(idx) != 100 {
		t.Fatalf("zero gradient selected %d", len(idx))
	}
}
