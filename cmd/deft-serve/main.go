// Command deft-serve runs the experiment-job service: an HTTP server that
// schedules paper artefacts and ad-hoc training runs as observable,
// cancellable jobs with single-flight dedup and a content-addressed
// result cache.
//
// Usage:
//
//	deft-serve -addr :8080 -pool 2
//
// Submit, stream, and cancel with curl:
//
//	curl -s localhost:8080/v1/jobs -d '{"experiment":"fig4","quick":true}'
//	curl -s localhost:8080/v1/jobs -d '{"train":{"workload":"mlp","sparsifier":"deft","iterations":200}}'
//	curl -N localhost:8080/v1/jobs/job-000001/stream
//	curl -s localhost:8080/v1/jobs/job-000001/report
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//
// GET /metrics serves Prometheus text (append ?format=expvar for the
// legacy JSON), including deft_runtime_* health gauges sampled every
// -health-every. -pprof mounts net/http/pprof under /debug/pprof/ for
// profiling under load; -trace writes a Chrome trace of job lifecycle
// spans (queued, running, attempt N, stream) on shutdown.
//
// -store DIR makes the server durable: completed artifacts live in a
// crash-safe content-addressed store under DIR and a write-ahead job
// journal replays every job across restarts — kill -9 the process,
// start it again on the same DIR, and done jobs answer from the store
// while interrupted ones re-run. -store-faults injects deterministic
// storage chaos (torn:…, bitflip:…, enospc:…) for drills.
//
// Signals: SIGTERM drains gracefully — no new jobs, the backlog runs to
// completion and is persisted, bounded by -drain. SIGINT aborts:
// running trainers stop mid-iteration and come back on the next boot.
//
// -cluster-listen HOST:PORT accepts follower nodes started with
// -join HOST:PORT (pure workers: no HTTP, no store). Training specs
// with "distribute": true partition their ranks across the leader and
// every joined node over real TCP; a node dying mid-job surfaces as a
// recoverable drop of its rank range.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 2, "concurrent flights (each training flight spawns its own worker goroutines)")
	queueDepth := flag.Int("queue", 256, "max queued flights before submissions get 503")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: exposes goroutine and heap internals)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of job lifecycle spans on shutdown")
	healthEvery := flag.Duration("health-every", 5*time.Second,
		"runtime health sampling interval — heap/GC/goroutine gauges on /metrics, counter events in the trace (0 = off)")
	storeDir := flag.String("store", "", "durable artifact store + job journal directory (empty = memory-only)")
	storeFaults := flag.String("store-faults", "",
		"deterministic store chaos: <kind>[:<hash>|*][@<put>],... with kind torn|bitflip|enospc, or a store.FaultPlan JSON object")
	clusterListen := flag.String("cluster-listen", "",
		"accept follower nodes (deft-serve -join) on this host:port; jobs with \"distribute\": true span the cluster")
	joinAddr := flag.String("join", "",
		"run as a pure worker node: join the cluster leader at host:port instead of serving HTTP")
	nodeName := flag.String("node-name", "", "advisory node label shown in the leader's logs (with -join)")
	flag.Parse()

	if *joinAddr != "" {
		if *clusterListen != "" {
			fmt.Fprintln(os.Stderr, "deft-serve: -join and -cluster-listen are mutually exclusive")
			os.Exit(2)
		}
		addr, err := registry.ParseClusterAddr(*joinAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-serve: -join: %v\n", err)
			os.Exit(2)
		}
		runWorker(addr, *nodeName)
		return
	}

	faultPlan, err := registry.ParseStoreFaultPlan(*storeFaults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deft-serve: -store-faults: %v\n", err)
		os.Exit(2)
	}
	if faultPlan != nil && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "deft-serve: -store-faults needs -store")
		os.Exit(2)
	}

	var cluster *serve.ClusterLeader
	if *clusterListen != "" {
		addr, err := registry.ParseClusterAddr(*clusterListen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-serve: -cluster-listen: %v\n", err)
			os.Exit(2)
		}
		cluster, err = serve.NewClusterLeader(addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-serve: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()
		log.Printf("deft-serve: accepting cluster nodes on %s", cluster.Addr())
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer("deft-serve")
	}
	srv, err := serve.NewDurable(serve.Options{
		Pool: *pool, Queue: *queueDepth, Tracer: tracer,
		StoreDir: *storeDir, StoreFaults: faultPlan,
		Cluster: cluster,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "deft-serve: %v\n", err)
		os.Exit(1)
	}
	if *storeDir != "" {
		restored, requeued := srv.RecoveryStats()
		log.Printf("deft-serve: durable store at %s (replay: %d jobs restored, %d re-enqueued)",
			*storeDir, restored, requeued)
	}
	var health *obs.HealthSampler
	if *healthEvery > 0 {
		health = obs.NewHealthSampler(srv.Metrics(), tracer)
		health.Start(*healthEvery)
	}
	handler := srv.Handler()
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("deft-serve: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("deft-serve: listening on %s (pool %d)", *addr, *pool)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	graceful := false
	select {
	case sig := <-sigCh:
		graceful = sig == syscall.SIGTERM
		log.Printf("deft-serve: %v, %s (budget %v)",
			sig, map[bool]string{true: "draining gracefully", false: "aborting"}[graceful], *drain)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "deft-serve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Settle the scheduler first — SIGTERM runs the backlog to completion
	// (persisting results), SIGINT aborts trainers mid-iteration — so the
	// HTTP drain below isn't stuck behind open /stream connections.
	settle := srv.Shutdown
	if graceful {
		settle = srv.Drain
	}
	if err := settle(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "deft-serve: scheduler drain: %v\n", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("deft-serve: http shutdown: %v", err)
	}
	if health != nil {
		health.Stop() // final sample lands in the trace before it's flushed
	}
	if tracer != nil {
		if f, err := os.Create(*tracePath); err != nil {
			log.Printf("deft-serve: -trace: %v", err)
		} else {
			if err := tracer.WriteChromeTrace(f); err != nil {
				log.Printf("deft-serve: -trace: %v", err)
			}
			f.Close()
			log.Printf("deft-serve: wrote %d lifecycle spans to %s", tracer.SpanCount(), *tracePath)
		}
	}
	log.Printf("deft-serve: drained cleanly")
}

// runWorker is -join mode: no HTTP, no store — the process joins the
// cluster leader, hosts its share of distributed training ranks, and
// rejoins with backoff whenever the connection drops, until SIGINT or
// SIGTERM.
func runWorker(addr, name string) {
	if name == "" {
		name, _ = os.Hostname()
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("deft-serve: worker mode, joining cluster at %s", addr)
	if err := serve.JoinCluster(ctx, addr, name); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "deft-serve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("deft-serve: worker stopped")
}
