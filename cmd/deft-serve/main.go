// Command deft-serve runs the experiment-job service: an HTTP server that
// schedules paper artefacts and ad-hoc training runs as observable,
// cancellable jobs with single-flight dedup and a content-addressed
// result cache.
//
// Usage:
//
//	deft-serve -addr :8080 -pool 2
//
// Submit, stream, and cancel with curl:
//
//	curl -s localhost:8080/v1/jobs -d '{"experiment":"fig4","quick":true}'
//	curl -s localhost:8080/v1/jobs -d '{"train":{"workload":"mlp","sparsifier":"deft","iterations":200}}'
//	curl -N localhost:8080/v1/jobs/job-000001/stream
//	curl -s localhost:8080/v1/jobs/job-000001/report
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//
// GET /metrics serves Prometheus text (append ?format=expvar for the
// legacy JSON), including deft_runtime_* health gauges sampled every
// -health-every. -pprof mounts net/http/pprof under /debug/pprof/ for
// profiling under load; -trace writes a Chrome trace of job lifecycle
// spans (queued, running, attempt N, stream) on shutdown.
//
// SIGINT/SIGTERM shut down gracefully: running trainers abort
// mid-iteration, queued jobs drain as cancelled, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 2, "concurrent flights (each training flight spawns its own worker goroutines)")
	queueDepth := flag.Int("queue", 256, "max queued flights before submissions get 503")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: exposes goroutine and heap internals)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of job lifecycle spans on shutdown")
	healthEvery := flag.Duration("health-every", 5*time.Second,
		"runtime health sampling interval — heap/GC/goroutine gauges on /metrics, counter events in the trace (0 = off)")
	flag.Parse()

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer("deft-serve")
	}
	srv := serve.New(serve.Options{Pool: *pool, Queue: *queueDepth, Tracer: tracer})
	var health *obs.HealthSampler
	if *healthEvery > 0 {
		health = obs.NewHealthSampler(srv.Metrics(), tracer)
		health.Start(*healthEvery)
	}
	handler := srv.Handler()
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("deft-serve: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("deft-serve: listening on %s (pool %d)", *addr, *pool)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("deft-serve: %v, draining (budget %v)", sig, *drain)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "deft-serve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Settle the scheduler first — running trainers abort mid-iteration,
	// jobs report cancelled, event streams terminate — so the HTTP drain
	// below isn't stuck behind open /stream connections.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "deft-serve: scheduler drain: %v\n", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("deft-serve: http shutdown: %v", err)
	}
	if health != nil {
		health.Stop() // final sample lands in the trace before it's flushed
	}
	if tracer != nil {
		if f, err := os.Create(*tracePath); err != nil {
			log.Printf("deft-serve: -trace: %v", err)
		} else {
			if err := tracer.WriteChromeTrace(f); err != nil {
				log.Printf("deft-serve: -trace: %v", err)
			}
			f.Close()
			log.Printf("deft-serve: wrote %d lifecycle spans to %s", tracer.SpanCount(), *tracePath)
		}
	}
	log.Printf("deft-serve: drained cleanly")
}
