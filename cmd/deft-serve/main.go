// Command deft-serve runs the experiment-job service: an HTTP server that
// schedules paper artefacts and ad-hoc training runs as observable,
// cancellable jobs with single-flight dedup and a content-addressed
// result cache.
//
// Usage:
//
//	deft-serve -addr :8080 -pool 2
//
// Submit, stream, and cancel with curl:
//
//	curl -s localhost:8080/v1/jobs -d '{"experiment":"fig4","quick":true}'
//	curl -s localhost:8080/v1/jobs -d '{"train":{"workload":"mlp","sparsifier":"deft","iterations":200}}'
//	curl -N localhost:8080/v1/jobs/job-000001/stream
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//
// SIGINT/SIGTERM shut down gracefully: running trainers abort
// mid-iteration, queued jobs drain as cancelled, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 2, "concurrent flights (each training flight spawns its own worker goroutines)")
	queueDepth := flag.Int("queue", 256, "max queued flights before submissions get 503")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget")
	flag.Parse()

	srv := serve.New(serve.Options{Pool: *pool, Queue: *queueDepth})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("deft-serve: listening on %s (pool %d)", *addr, *pool)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("deft-serve: %v, draining (budget %v)", sig, *drain)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "deft-serve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Settle the scheduler first — running trainers abort mid-iteration,
	// jobs report cancelled, event streams terminate — so the HTTP drain
	// below isn't stuck behind open /stream connections.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "deft-serve: scheduler drain: %v\n", err)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("deft-serve: http shutdown: %v", err)
	}
	log.Printf("deft-serve: drained cleanly")
}
