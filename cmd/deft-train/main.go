// Command deft-train runs one distributed training job on the simulated
// cluster and reports convergence, realised density, error norm and the
// training-time breakdown.
//
// Usage:
//
//	deft-train -workload vision -sparsifier deft -workers 16 -density 0.01 -iters 200
//	deft-train -workload langmodel -sparsifier deft -quantize   # fp16 wire payloads
//	deft-train -workload mlp -faults 'drop:3@50' -recover       # chaos + recovery
//	deft-train -workload mlp -json > result.json
//	deft-train -workload mlp -trace trace.json                  # Perfetto phase trace
//	deft-train -workload mlp -faults 'straggler:1x4@20-50' -report  # trace analytics
//
// Workloads: mlp, vision, langmodel, recsys.
// Sparsifiers: deft, topk, cltk, sidco, randk, dgc, gaussiank,
// hardthreshold, dense.
//
// -json emits the train.Result JSON document — the same serialization the
// deft-serve job service returns, so downstream tooling parses one format.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/registry"
	"repro/internal/train"
)

func main() {
	workload := flag.String("workload", "mlp", "mlp | vision | langmodel | recsys")
	scheme := flag.String("sparsifier", "deft", "deft | topk | cltk | sidco | randk | dgc | gaussiank | hardthreshold | dense")
	workers := flag.Int("workers", 8, "number of simulated workers")
	density := flag.Float64("density", 0.01, "target density d = k/n_g")
	lr := flag.Float64("lr", 0.3, "learning rate")
	momentum := flag.Float64("momentum", 0, "momentum on the aggregated update")
	iters := flag.Int("iters", 100, "training iterations")
	evalEvery := flag.Int("eval-every", 25, "iterations between evaluations")
	quantize := flag.Bool("quantize", false,
		"ship fp16 uploads (coo16/bitmap16) and apply the decoded values; error feedback absorbs the quantization error")
	seed := flag.Uint64("seed", 1, "run seed")
	faults := flag.String("faults", "",
		"chaos schedule: JSON fault plan or shorthand like 'straggler:1x4,drop:3@50' (see README 'Chaos & elasticity')")
	recoverFlag := flag.Bool("recover", false,
		"on an injected drop/transient: checkpoint, rebuild the cluster at the surviving size and resume")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of text")
	tracePath := flag.String("trace", "",
		"write a Chrome trace-event JSON file of per-rank phase spans (load in Perfetto or chrome://tracing)")
	progressEvery := flag.Int("progress-every", 0,
		"emit per-layer allocation/norm snapshots every N record iterations (0 = off)")
	report := flag.Bool("report", false,
		"print the trace-analytics report after the run: phase table, critical path, straggler attribution, anomalies")
	healthEvery := flag.Duration("health-every", time.Second,
		"runtime health sampling interval for traced runs — heap/GC/goroutines as trace counter events (0 = off)")
	flag.Parse()

	w, err := registry.NewWorkload(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deft-train: %v\n", err)
		os.Exit(2)
	}
	factory, dense, err := registry.NewFactory(*scheme, w, *density)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deft-train: %v\n", err)
		os.Exit(2)
	}
	if *quantize && dense {
		fmt.Fprintln(os.Stderr, "deft-train: -quantize applies to sparse schemes; the dense baseline ships fp32")
		os.Exit(2)
	}
	plan, err := registry.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deft-train: -faults: %v\n", err)
		os.Exit(2)
	}
	if err := plan.Validate(*workers); err != nil {
		fmt.Fprintf(os.Stderr, "deft-train: -faults: %v\n", err)
		os.Exit(2)
	}
	cfg := train.Config{
		Workers: *workers, Density: *density, LR: *lr, Momentum: *momentum,
		Iterations: *iters, EvalEvery: *evalEvery, Seed: *seed,
		Quantize:      *quantize,
		DisableSparse: dense,
		Faults:        plan,
		Recover:       *recoverFlag,
		CostModel:     comm.DefaultCostModel(),
		Topology:      comm.DefaultTopology(),
		ProgressEvery: *progressEvery,
	}
	var tracer *obs.Tracer
	if *tracePath != "" || *report {
		tracer = obs.NewTracer("deft-train")
		cfg.Tracer = tracer
	}

	// SIGINT/SIGTERM cancel the run context: the trainer unwinds
	// mid-iteration and returns its partial result, and the trace still
	// gets flushed below — an interrupted run stays analyzable.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var health *obs.HealthSampler
	if tracer != nil && *healthEvery > 0 {
		health = obs.NewHealthSampler(nil, tracer)
		health.Start(*healthEvery)
	}

	res, runErr := train.RunContext(ctx, w, factory, cfg)
	stopSignals() // a second ^C past this point kills the process normally
	if health != nil {
		health.Stop()
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "deft-train: %v\n", runErr)
	}
	if tracer != nil && *tracePath != "" {
		if err := writeTrace(tracer, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "deft-train: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "deft-train: wrote %d spans to %s\n", tracer.SpanCount(), *tracePath)
	}
	if *report && tracer != nil {
		rep := analyze.Analyze(analyze.FromTracer(tracer), analyze.Options{})
		fmt.Println()
		if err := rep.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "deft-train: -report: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil || res == nil {
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "deft-train: encode: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Println(res.Summary())
	fmt.Printf("\n%-12s %-12s %-14s %-12s\n", "iteration", "train loss", "density", "error ‖e‖")
	for i := range res.TrainLoss.X {
		fmt.Printf("%-12.0f %-12.4f %-14.6f %-12.6f\n",
			res.TrainLoss.X[i], res.TrainLoss.Y[i], res.ActualDensity.Y[i], res.ErrorNorm.Y[i])
	}
	fmt.Printf("\n%s over training:\n", w.MetricName())
	for i := range res.Metric.X {
		fmt.Printf("  iter %-8.0f %.3f\n", res.Metric.X[i], res.Metric.Y[i])
	}
	fmt.Printf("\ntime totals: compute %.3fs, selection %.3fs, partition %.3fs, comm (α–β) %.3fs, comm (topology, encoded bytes) %.3fs\n",
		res.ComputeTime, res.SelectTime, res.PartitionTime, res.CommTime, res.WireCommTime)
	fmt.Printf("traffic (encoded bytes): allgather %d, allreduce %d, broadcast %d\n",
		res.Traffic.AllGatherBytes, res.Traffic.AllReduceBytes, res.Traffic.BroadcastBytes)
	fmt.Printf("wire: %d B encoded (%.0f B/iteration), dense fp32 baseline %d B, compression %.2fx\n",
		res.WireBytes, res.BytesPerIteration(), res.DenseBytes, res.CompressionRatio())
	fmt.Printf("comm modeled vs measured: modeled (topology) %.3fs, measured combine wall %.3fs across %d collectives\n",
		res.WireCommTime, res.CommWall.TotalSeconds(),
		res.CommWall.Barrier.Count+res.CommWall.Broadcast.Count+res.CommWall.AllGather.Count+res.CommWall.AllReduce.Count)
	if len(res.Faults) > 0 {
		fmt.Printf("\nchaos: %d injected fault(s), %d recover(ies) costing %.1fms, %d/%d workers surviving\n",
			len(res.Faults), res.Recoveries, res.RecoveryTime*1000, res.Survivors, res.Workers)
		for _, fe := range res.Faults {
			fmt.Printf("  %s of rank %d at iteration %d\n", fe.Kind, fe.Rank, fe.Iteration)
		}
	}
}

// writeTrace flushes the tracer to path, closing the file even when the
// encoder fails.
func writeTrace(tracer *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
