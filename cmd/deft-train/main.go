// Command deft-train runs one distributed training job on the simulated
// cluster and reports convergence, realised density, error norm and the
// training-time breakdown.
//
// Usage:
//
//	deft-train -workload vision -sparsifier deft -workers 16 -density 0.01 -iters 200
//
// Workloads: mlp, vision, langmodel, recsys.
// Sparsifiers: deft, topk, cltk, sidco, randk, hardthreshold, dense.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sparsifier"
	"repro/internal/train"
)

func main() {
	workload := flag.String("workload", "mlp", "mlp | vision | langmodel | recsys")
	scheme := flag.String("sparsifier", "deft", "deft | topk | cltk | sidco | randk | dgc | gaussiank | hardthreshold | dense")
	workers := flag.Int("workers", 8, "number of simulated workers")
	density := flag.Float64("density", 0.01, "target density d = k/n_g")
	lr := flag.Float64("lr", 0.3, "learning rate")
	momentum := flag.Float64("momentum", 0, "momentum on the aggregated update")
	iters := flag.Int("iters", 100, "training iterations")
	evalEvery := flag.Int("eval-every", 25, "iterations between evaluations")
	seed := flag.Uint64("seed", 1, "run seed")
	flag.Parse()

	w := buildWorkload(*workload)
	if w == nil {
		fmt.Fprintf(os.Stderr, "deft-train: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	cfg := train.Config{
		Workers: *workers, Density: *density, LR: *lr, Momentum: *momentum,
		Iterations: *iters, EvalEvery: *evalEvery, Seed: *seed,
		CostModel: comm.DefaultCostModel(),
	}
	var factory sparsifier.Factory
	switch *scheme {
	case "dense":
		cfg.DisableSparse = true
	case "deft":
		factory = core.Factory(core.DefaultOptions())
	case "topk":
		factory = func() sparsifier.Sparsifier { return sparsifier.NewTopK() }
	case "cltk":
		factory = func() sparsifier.Sparsifier { return &sparsifier.CLTK{} }
	case "sidco":
		factory = func() sparsifier.Sparsifier { return &sparsifier.SIDCo{Stages: 3} }
	case "randk":
		factory = func() sparsifier.Sparsifier { return sparsifier.RandK{} }
	case "dgc":
		factory = func() sparsifier.Sparsifier { return &sparsifier.DGC{} }
	case "gaussiank":
		factory = func() sparsifier.Sparsifier { return sparsifier.GaussianK{} }
	case "hardthreshold":
		h := tuneHard(w, *density)
		factory = func() sparsifier.Sparsifier { return h }
	default:
		fmt.Fprintf(os.Stderr, "deft-train: unknown sparsifier %q\n", *scheme)
		os.Exit(2)
	}

	res := train.Run(w, factory, cfg)
	fmt.Println(res.Summary())
	fmt.Printf("\n%-12s %-12s %-14s %-12s\n", "iteration", "train loss", "density", "error ‖e‖")
	for i := range res.TrainLoss.X {
		fmt.Printf("%-12.0f %-12.4f %-14.6f %-12.6f\n",
			res.TrainLoss.X[i], res.TrainLoss.Y[i], res.ActualDensity.Y[i], res.ErrorNorm.Y[i])
	}
	fmt.Printf("\n%s over training:\n", w.MetricName())
	for i := range res.Metric.X {
		fmt.Printf("  iter %-8.0f %.3f\n", res.Metric.X[i], res.Metric.Y[i])
	}
	fmt.Printf("\ntime totals: compute %.3fs, selection %.3fs, partition %.3fs, comm (α–β) %.3fs, comm (topology, encoded bytes) %.3fs\n",
		res.ComputeTime, res.SelectTime, res.PartitionTime, res.CommTime, res.WireCommTime)
	fmt.Printf("traffic (encoded bytes): allgather %d, allreduce %d, broadcast %d\n",
		res.Traffic.AllGatherBytes, res.Traffic.AllReduceBytes, res.Traffic.BroadcastBytes)
	fmt.Printf("wire: %d B encoded (%.0f B/iteration), dense fp32 baseline %d B, compression %.2fx\n",
		res.WireBytes, res.BytesPerIteration(), res.DenseBytes, res.CompressionRatio())
}

func buildWorkload(name string) train.Workload {
	switch name {
	case "mlp":
		return models.NewMLP(models.DefaultMLPConfig())
	case "vision":
		return models.NewVision(models.DefaultVisionConfig())
	case "langmodel":
		return models.NewText(models.DefaultTextConfig())
	case "recsys":
		return models.NewRecsys(models.DefaultRecsysConfig())
	}
	return nil
}

// tuneHard tunes the hard-threshold sparsifier on one sample gradient, the
// pre-training hyperparameter step the paper's Table 1 describes.
func tuneHard(w train.Workload, density float64) *sparsifier.HardThreshold {
	m := w.NewModel()
	params := m.Params()
	nn.ZeroGrads(params)
	m.Step(rng.New(99))
	flat := make([]float64, nn.TotalSize(params))
	train.FlattenGrads(params, flat)
	return sparsifier.TuneHardThreshold(flat, density)
}
