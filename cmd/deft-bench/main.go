// Command deft-bench regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	deft-bench [-quick] [-seed N] <id>...
//	deft-bench -list
//	deft-bench all            # every experiment
//
// ids: table1 table2 fig1 fig3a fig3b fig3c fig4 fig5 fig6 fig7 fig8 fig9
// fig10 ablation
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced worker counts and iteration budgets")
	seed := flag.Uint64("seed", 0, "seed offset for all runs")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "also write each table as <dir>/<id>.csv")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deft-bench [-quick] [-seed N] <id>... | all | -list\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.IDs()
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	for _, id := range args {
		start := time.Now()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-bench: %v\n", err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "deft-bench: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// writeCSV stores one table as dir/<id>.csv (columns header + rows).
func writeCSV(dir string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(tab.Columns); err != nil {
		return err
	}
	for _, row := range tab.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
