// Command deft-bench regenerates the paper's tables and figures on the
// simulated substrate, and doubles as the perf-regression harness.
//
// Usage:
//
//	deft-bench [-quick] [-seed N] <id>...
//	deft-bench -list
//	deft-bench all            # every experiment
//	deft-bench -json          # run perf microbenches, write BENCH_results.json
//	deft-bench -compare BENCH_results.json
//	                          # run microbenches, fail on >10% ns/op regression
//	deft-bench -compare old.json -against new.json
//	                          # compare two saved files without running
//
// ids: table1 table2 fig1 fig3a fig3b fig3c fig4 fig5 fig6 fig7 fig8 fig9
// fig10 ablation table3 quant
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/benchkit"
	"repro/internal/experiments"
	"repro/internal/tensor"
)

func main() {
	quick := flag.Bool("quick", false, "reduced worker counts and iteration budgets")
	seed := flag.Uint64("seed", 0, "seed offset for all runs")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"fan each experiment's independent training runs over up to N goroutines (1 = sequential)")
	gemmWorkers := flag.Int("gemm-workers", 0,
		"cap tensor.SetGemmWorkers for this process (0 = leave the GOMAXPROCS default); output is bit-identical for any value")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "also write each table as <dir>/<id>.csv")
	jsonOut := flag.Bool("json", false, "run the perf microbenchmarks and write -bench-out")
	benchOut := flag.String("bench-out", "BENCH_results.json", "output path for -json results")
	compare := flag.String("compare", "", "baseline BENCH_results.json; exit 1 on >tolerance ns/op regression")
	against := flag.String("against", "", "with -compare: saved results to compare instead of running")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op growth for -compare")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: deft-bench [-quick] [-seed N] <id>... | all | -list | -json | -compare baseline.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *gemmWorkers > 0 {
		tensor.SetGemmWorkers(*gemmWorkers)
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *jsonOut || *compare != "" {
		if err := runBenchmarks(*jsonOut, *benchOut, *compare, *against, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "deft-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.IDs()
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Parallel: *parallel}
	for _, id := range args {
		start := time.Now()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-bench: %v\n", err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "deft-bench: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runBenchmarks implements -json and -compare: execute the benchkit
// microbenchmarks (unless a saved -against file is supplied), optionally
// persist them, and gate against a baseline.
func runBenchmarks(writeJSON bool, outPath, baselinePath, againstPath string, tolerance float64) error {
	// Load the baseline before anything can write -bench-out: with
	// `-json -compare BENCH_results.json` both point at the same file, and
	// writing first would make the gate compare the new results against
	// themselves.
	var base benchkit.File
	if baselinePath != "" {
		var err error
		if base, err = benchkit.ReadFile(baselinePath); err != nil {
			return err
		}
	}
	var cur benchkit.File
	if againstPath != "" {
		var err error
		if cur, err = benchkit.ReadFile(againstPath); err != nil {
			return err
		}
	} else {
		fmt.Println("running perf microbenchmarks (this takes a minute)...")
		cur = benchkit.RunAll()
	}
	for _, r := range cur.Results {
		fmt.Printf("  %-32s %14.0f ns/op %10d B/op %8d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if writeJSON {
		if err := cur.WriteFile(outPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if baselinePath == "" {
		return nil
	}
	regs := benchkit.Compare(base, cur, tolerance)
	if len(regs) == 0 {
		fmt.Printf("no ns/op regression beyond %.0f%% against %s\n", tolerance*100, baselinePath)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "REGRESSION %-32s %.0f -> %.0f ns/op (%.1f%%)\n",
			r.Name, r.Old, r.New, (r.Ratio-1)*100)
	}
	return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(regs), tolerance*100)
}

// writeCSV stores one table as dir/<id>.csv (columns header + rows).
func writeCSV(dir string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(tab.Columns); err != nil {
		return err
	}
	for _, row := range tab.Rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
