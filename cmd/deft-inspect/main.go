// Command deft-inspect dumps DEFT's per-iteration decisions — the
// two-stage partition (Algorithm 2), the norm-proportional local k
// assignment (Algorithm 3) and the bin-packing allocation (Algorithm 4) —
// for one of the paper's model catalogs with synthetic gradients, or for a
// trainable workload's first real gradient, plus the wire footprint of
// every sparsifier scheme on that gradient.
//
// Usage:
//
//	deft-inspect -catalog lstm -workers 16 -density 0.001
//	deft-inspect -workload vision -workers 8 -density 0.01
//	deft-inspect -workload mlp -json > inspect.json
//	deft-inspect -workload mlp -comm 30          # modeled vs measured comm per scheme
//	deft-inspect -watch http://localhost:8080/v1/jobs/job-000001/stream
//	deft-inspect -analyze trace.json             # trace analytics report
//
// Output is two tables (fragment allocation, wire footprint); -json emits
// them with the shared experiments.Table serialization used by deft-serve
// and deft-bench. -comm N trains every scheme for N iterations and
// reports the topology-modeled comm time next to the measured collective
// combine wall with the model error per scheme. -watch renders a running
// job\'s per-layer allocation live from its NDJSON stream (pass - to read
// the stream from stdin), reconnecting with capped backoff when an HTTP
// stream drops. -analyze reads a Chrome trace written by deft-train
// -trace and prints phase stats, the cross-rank critical path, straggler
// attribution and anomalies (-json for the machine-readable report).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"sync"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/shapes"
	"repro/internal/sparsifier"
	"repro/internal/train"
	"repro/internal/wire"
)

func main() {
	catalog := flag.String("catalog", "", "resnet18 | lstm | ncf (synthetic gradients)")
	workload := flag.String("workload", "", "mlp | vision | langmodel | recsys (real first gradient)")
	workers := flag.Int("workers", 8, "number of workers")
	density := flag.Float64("density", 0.01, "target density")
	scale := flag.Float64("scale", 0.1, "catalog scale factor")
	maxRows := flag.Int("max-rows", 24, "fragment rows to print (0 = all)")
	faults := flag.String("faults", "",
		"also inspect a chaos schedule (JSON fault plan or shorthand like 'straggler:1x4,drop:3@50') against -workers")
	jsonOut := flag.Bool("json", false, "emit the tables as JSON instead of text")
	commIters := flag.Int("comm", 0,
		"train every scheme for N iterations and report modeled vs measured comm time per scheme (0 = off; needs -workload)")
	watchSource := flag.String("watch", "",
		"render a job's per-layer allocation live from its NDJSON stream: a deft-serve /v1/jobs/{id}/stream URL, a file, or - for stdin")
	analyzePath := flag.String("analyze", "",
		"print the trace-analytics report for a Chrome trace-event file written by deft-train -trace (- for stdin; -json for the Report document)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"run up to N sparsifier schemes' selection+encode concurrently (1 = sequential); output is byte-identical either way")
	flag.Parse()

	if *watchSource != "" {
		if err := watch(*watchSource); err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: -watch: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *analyzePath != "" {
		if err := analyzeTrace(*analyzePath, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: -analyze: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *commIters > 0 && *workload == "" {
		fmt.Fprintln(os.Stderr, "deft-inspect: -comm trains real workloads; pass -workload")
		os.Exit(2)
	}

	var layers []sparsifier.Layer
	var grad []float64
	var source string
	switch {
	case *catalog != "":
		c, ok := shapes.ByName(*catalog)
		if !ok {
			fmt.Fprintf(os.Stderr, "deft-inspect: unknown catalog %q\n", *catalog)
			os.Exit(2)
		}
		c = c.Scaled(*scale)
		layers = c.Layers()
		grad = c.SyntheticGradients(42)
		source = fmt.Sprintf("catalog %s (scale %g)", *catalog, *scale)
	case *workload != "":
		w, err := registry.NewWorkload(*workload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: %v\n", err)
			os.Exit(2)
		}
		m := w.NewModel()
		params := m.Params()
		nn.ZeroGrads(params)
		m.Step(rng.New(1))
		grad = make([]float64, nn.TotalSize(params))
		train.FlattenGrads(params, grad)
		layers = train.Layout(params)
		source = fmt.Sprintf("workload %s (first real gradient)", *workload)
	default:
		fmt.Fprintln(os.Stderr, "deft-inspect: pass -catalog or -workload")
		os.Exit(2)
	}

	// In JSON mode all fragment rows ship; -max-rows trims only the text
	// rendering.
	rows := *maxRows
	if *jsonOut {
		rows = 0
	}
	tables := []*experiments.Table{
		fragmentTable(layers, grad, *workers, *density, source, rows),
		wireTable(layers, grad, *workers, *density, *parallel),
	}
	if *commIters > 0 {
		tables = append(tables, commTable(*workload, *workers, *density, *commIters))
	}
	if *faults != "" {
		plan, err := registry.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: -faults: %v\n", err)
			os.Exit(2)
		}
		if err := plan.Validate(*workers); err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: -faults: %v\n", err)
			os.Exit(2)
		}
		tables = append(tables, faultTable(plan, *workers))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: encode: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}

// fragmentTable renders DEFT's partition/assign/allocate decisions as one
// table: fragment rows plus per-worker cost rows, with the balance and
// speedup summary in the notes.
func fragmentTable(layers []sparsifier.Layer, grad []float64, workers int, density float64, source string, maxRows int) *experiments.Table {
	ng := len(grad)
	k := int(float64(ng) * density)
	frags := core.Partition(layers, workers, core.PartitionOpts{SecondStage: true})
	core.ComputeNorms(frags, grad)
	core.AssignK(frags, k)
	bins := core.Allocate(frags, workers, core.LPTPolicy)

	owner := make([]int, len(frags))
	for w, bin := range bins {
		for _, fi := range bin {
			owner[fi] = w
		}
	}

	t := &experiments.Table{
		ID: "inspect-fragments",
		Title: fmt.Sprintf("DEFT fragment allocation — %s: %d gradients in %d layers, workers=%d, d=%g (k=%d)",
			source, ng, len(layers), workers, density, k),
		Columns: []string{"frag", "layer", "size", "norm", "k", "cost", "worker"},
	}
	shown := 0
	for i, f := range frags {
		if maxRows > 0 && shown >= maxRows {
			t.Notes = append(t.Notes, fmt.Sprintf("%d more fragments elided (-max-rows)", len(frags)-shown))
			break
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i), truncate(f.Name, 28), fmt.Sprintf("%d", f.Size()),
			fmt.Sprintf("%.4g", f.Norm), fmt.Sprintf("%d", f.K),
			fmt.Sprintf("%.4g", f.Cost()), fmt.Sprintf("%d", owner[i]),
		})
		shown++
	}

	totalK := 0
	total := 0.0
	for _, f := range frags {
		totalK += f.K
		total += f.Cost()
	}
	for w := range bins {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("worker %d", w), fmt.Sprintf("(%d fragments)", len(bins[w])), "", "", "",
			fmt.Sprintf("%.4g", core.WorkerCost(frags, bins[w])), fmt.Sprintf("%d", w),
		})
	}
	maxC := core.MaxWorkerCost(frags, bins)
	t.Notes = append(t.Notes,
		fmt.Sprintf("Σk = %d (target %d, realised density %.6f)", totalK, k, float64(totalK)/float64(ng)),
		fmt.Sprintf("balance: max/mean = %.3f; modeled speedup over whole-vector top-k = %.1fx (trivial bound %.1fx, linear %dx)",
			maxC/(total/float64(workers)),
			core.FullCost(ng, k)/maxC,
			core.FullCost(ng, k)/core.TrivialCost(ng, k, workers),
			workers))
	return t
}

// wireTable runs every sparsifier scheme once on the gradient and reports
// its encoded upload payload — bytes one worker ships per iteration —
// under each internal/wire format, the automatically selected cheapest
// format, and the compression ratio against the dense fp32 baseline.
//
// The per-scheme selection+encode passes are independent (each scheme gets
// its own sparsifier instance, context and buffers; the gradient is only
// read), so they fan out over a pool of up to parallel goroutines. Rows
// are assembled in registry order, making the table byte-identical to a
// sequential run — the cells carry no wall-clock measurements.
func wireTable(layers []sparsifier.Layer, grad []float64, workers int, density float64, parallel int) *experiments.Table {
	ng := len(grad)
	// Every scheme the registry advertises, so a sparsifier added there
	// shows up here automatically. The dense baseline has no selection to
	// encode, and hardthreshold tunes on the inspected gradient itself
	// (catalog mode has no workload to sample).
	type scheme struct {
		name string
		sp   sparsifier.Sparsifier
	}
	var schemes []scheme
	for _, name := range registry.Sparsifiers() {
		switch name {
		case "dense":
			continue
		case "hardthreshold":
			// The threshold tune runs here, not in the pool: it is shared
			// input preparation, and keeping it out keeps every pool job a
			// pure function of (scheme, grad).
			schemes = append(schemes, scheme{name, sparsifier.TuneHardThreshold(grad, density)})
		default:
			factory, _, err := registry.NewFactory(name, nil, density)
			if err != nil {
				fmt.Fprintf(os.Stderr, "deft-inspect: %v\n", err)
				os.Exit(1)
			}
			schemes = append(schemes, scheme{name, factory()})
		}
	}
	dense := wire.DenseBytes(ng)
	t := &experiments.Table{
		ID:      "inspect-wire",
		Title:   fmt.Sprintf("Wire footprint per scheme (one worker-iteration upload; dense fp32 baseline %d B)", dense),
		Columns: []string{"scheme", "nnz", "density", "coo32", "coo16†", "bitmap32", "bitmap16†", "fp32 bytes/it", "fp16 bytes/it", "fp32 x", "fp16 x"},
	}
	if parallel < 1 {
		parallel = 1
	}
	rows := make([][]string, len(schemes))
	errs := make([]error, len(schemes))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, s := range schemes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, s scheme) {
			defer func() {
				<-sem
				wg.Done()
			}()
			ctx := &sparsifier.Ctx{NWorkers: workers, Density: density, Layers: layers}
			idx := append([]int(nil), s.sp.Select(ctx, grad)...)
			slices.Sort(idx)
			vals := make([]float64, len(idx))
			for j, ix := range idx {
				vals[j] = grad[ix]
			}
			best, size := wire.Pick(ng, idx, wire.Float32)
			buf, f, err := wire.AppendAuto(nil, ng, idx, vals, wire.Float32)
			if err != nil {
				errs[i] = fmt.Errorf("%s: wire encode failed: %w", s.name, err)
				return
			}
			if f != best || len(buf) != size {
				errs[i] = fmt.Errorf("%s: encode produced (%v, %d B), Pick promised (%v, %d B)",
					s.name, f, len(buf), best, size)
				return
			}
			best16, size16 := wire.Pick(ng, idx, wire.Float16)
			rows[i] = []string{
				s.name, fmt.Sprintf("%d", len(idx)), fmt.Sprintf("%.6f", float64(len(idx))/float64(ng)),
				fmt.Sprintf("%d", wire.EncodedSize(wire.COO32, ng, idx)),
				fmt.Sprintf("%d", wire.EncodedSize(wire.COO16, ng, idx)),
				fmt.Sprintf("%d", wire.EncodedSize(wire.Bitmap32, ng, idx)),
				fmt.Sprintf("%d", wire.EncodedSize(wire.Bitmap16, ng, idx)),
				fmt.Sprintf("%d (%s)", size, best),
				fmt.Sprintf("%d (%s)", size16, best16),
				fmt.Sprintf("%.1fx", float64(dense)/float64(size)),
				fmt.Sprintf("%.1fx", float64(dense)/float64(size16)),
			}
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: %v\n", err)
			os.Exit(1)
		}
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"† fp16-capable format: values quantized to IEEE binary16 — the payload `deft-train -quantize` (and spec \"quantize\": true) ships",
		"fp16 bytes/ratio columns cross-reference the convergence rows of the `quant` experiment (deft-bench quant)")
	return t
}

// faultTable renders a parsed chaos schedule: every entry with its firing
// condition, sorted the way the run experiences them, plus the canonical
// JSON form (the replay artefact) and the survivor count after all drops.
func faultTable(plan *comm.FaultPlan, workers int) *experiments.Table {
	t := &experiments.Table{
		ID:      "inspect-faults",
		Title:   fmt.Sprintf("Fault plan against %d workers", workers),
		Columns: []string{"kind", "rank", "fires", "effect"},
	}
	for _, s := range plan.Stragglers {
		window := "every iteration"
		switch {
		case s.Until > 0:
			window = fmt.Sprintf("iterations [%d,%d)", s.From, s.Until)
		case s.From > 0:
			window = fmt.Sprintf("iterations >= %d", s.From)
		}
		t.Rows = append(t.Rows, []string{
			"straggler", fmt.Sprintf("%d", s.Rank), window,
			fmt.Sprintf("step time x%g (every attempt)", s.Factor),
		})
	}
	type event struct {
		kind            string
		rank, iter, att int
	}
	var events []event
	for _, tr := range plan.Transients {
		events = append(events, event{comm.FaultTransient, tr.Rank, tr.Iteration, tr.Attempts})
	}
	for _, d := range plan.Drops {
		events = append(events, event{comm.FaultDrop, d.Rank, d.Iteration, d.Attempts})
	}
	slices.SortStableFunc(events, func(a, b event) int { return a.iter - b.iter })
	survivors := workers
	for _, e := range events {
		attempts := "first attempt"
		if e.att > 1 {
			attempts = fmt.Sprintf("attempts 1-%d", e.att)
		}
		effect := "cluster unwinds; rank survives a recovery/retry"
		if e.kind == comm.FaultDrop {
			survivors--
			effect = fmt.Sprintf("rank lost; %d survive a recovery", survivors)
		}
		t.Rows = append(t.Rows, []string{
			e.kind, fmt.Sprintf("%d", e.rank), fmt.Sprintf("iteration %d (%s)", e.iter, attempts), effect,
		})
	}
	canonical, err := json.Marshal(plan)
	if err != nil {
		panic("deft-inspect: fault plan marshal: " + err.Error())
	}
	t.Notes = append(t.Notes,
		"canonical JSON (replayable via deft-train -faults / spec \"faults\"): "+string(canonical),
		"firing is a pure function of (plan, rank, iteration, attempt): the same plan replays bit-identically")
	return t
}

// commTable trains every sparsifier scheme for iters iterations on the
// workload and reports the topology-modeled comm time (WireCommTime, a
// pure function of encoded bytes and the cost model) next to the measured
// wall-clock the collectives' combine steps actually took, with the model
// error per scheme. The two columns answer different questions — "what
// would this cost on the modeled network" vs "what did the simulated
// collectives cost here" — and the error column is how far apart they are.
func commTable(workload string, workers int, density float64, iters int) *experiments.Table {
	t := &experiments.Table{
		ID: "inspect-comm",
		Title: fmt.Sprintf("Modeled vs measured comm — workload %s, workers=%d, d=%g, %d iterations",
			workload, workers, density, iters),
		Columns: []string{"scheme", "modeled comm (s)", "measured wall (s)", "collectives", "socket tx/rx", "error"},
	}
	for _, name := range registry.Sparsifiers() {
		w, err := registry.NewWorkload(workload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: %v\n", err)
			os.Exit(1)
		}
		factory, dense, err := registry.NewFactory(name, w, density)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: %v\n", err)
			os.Exit(1)
		}
		cfg := train.Config{
			Workers: workers, Density: density, LR: 0.1,
			Iterations: iters, DisableSparse: dense,
			CostModel: comm.DefaultCostModel(), Topology: comm.DefaultTopology(),
		}
		res := train.Run(w, factory, cfg)
		measured := res.CommWall.TotalSeconds()
		collectives := res.CommWall.Barrier.Count + res.CommWall.Broadcast.Count +
			res.CommWall.AllGather.Count + res.CommWall.AllReduce.Count
		errPct := "n/a"
		if res.WireCommTime > 0 {
			errPct = fmt.Sprintf("%+.1f%%", 100*(measured-res.WireCommTime)/res.WireCommTime)
		}
		// Socket bytes only appear when a run crossed real TCP transports
		// (multi-node serve clusters); the in-process runs here show "—".
		socket := "—"
		if res.SocketTxBytes > 0 || res.SocketRxBytes > 0 {
			socket = fmt.Sprintf("%d/%d", res.SocketTxBytes, res.SocketRxBytes)
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%.4f", res.WireCommTime), fmt.Sprintf("%.4f", measured),
			fmt.Sprintf("%d", collectives), socket, errPct,
		})
	}
	t.Notes = append(t.Notes,
		"modeled = WireCommTime: encoded bytes through the α–β topology cost model",
		"measured = wall-clock of the in-process collectives' combine steps (Result.comm_wall); the error column is (measured−modeled)/modeled",
		"socket tx/rx = real bytes through TCP cluster transports (framing included); — for in-process runs")
	return t
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
