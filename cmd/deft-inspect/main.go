// Command deft-inspect dumps DEFT's per-iteration decisions — the
// two-stage partition (Algorithm 2), the norm-proportional local k
// assignment (Algorithm 3) and the bin-packing allocation (Algorithm 4) —
// for one of the paper's model catalogs with synthetic gradients, or for a
// trainable workload's first real gradient.
//
// Usage:
//
//	deft-inspect -catalog lstm -workers 16 -density 0.001
//	deft-inspect -workload vision -workers 8 -density 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/shapes"
	"repro/internal/sparsifier"
	"repro/internal/train"
)

func main() {
	catalog := flag.String("catalog", "", "resnet18 | lstm | ncf (synthetic gradients)")
	workload := flag.String("workload", "", "mlp | vision | langmodel | recsys (real first gradient)")
	workers := flag.Int("workers", 8, "number of workers")
	density := flag.Float64("density", 0.01, "target density")
	scale := flag.Float64("scale", 0.1, "catalog scale factor")
	maxRows := flag.Int("max-rows", 24, "fragment rows to print (0 = all)")
	flag.Parse()

	var layers []sparsifier.Layer
	var grad []float64
	switch {
	case *catalog != "":
		c, ok := shapes.ByName(*catalog)
		if !ok {
			fmt.Fprintf(os.Stderr, "deft-inspect: unknown catalog %q\n", *catalog)
			os.Exit(2)
		}
		c = c.Scaled(*scale)
		layers = c.Layers()
		grad = c.SyntheticGradients(42)
	case *workload != "":
		w := buildWorkload(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		m := w.NewModel()
		params := m.Params()
		nn.ZeroGrads(params)
		m.Step(rng.New(1))
		grad = make([]float64, nn.TotalSize(params))
		train.FlattenGrads(params, grad)
		layers = train.Layout(params)
	default:
		fmt.Fprintln(os.Stderr, "deft-inspect: pass -catalog or -workload")
		os.Exit(2)
	}

	ng := len(grad)
	k := int(float64(ng) * *density)
	fmt.Printf("model: %d gradients in %d layers; workers=%d, d=%g (k=%d)\n\n",
		ng, len(layers), *workers, *density, k)

	frags := core.Partition(layers, *workers, core.PartitionOpts{SecondStage: true})
	core.ComputeNorms(frags, grad)
	core.AssignK(frags, k)
	bins := core.Allocate(frags, *workers, core.LPTPolicy)

	owner := make([]int, len(frags))
	for w, bin := range bins {
		for _, fi := range bin {
			owner[fi] = w
		}
	}

	fmt.Printf("%-6s %-28s %-10s %-12s %-8s %-10s %-6s\n",
		"frag", "layer", "size", "norm", "k", "cost", "worker")
	shown := 0
	for i, f := range frags {
		if *maxRows > 0 && shown >= *maxRows {
			fmt.Printf("... (%d more fragments)\n", len(frags)-shown)
			break
		}
		fmt.Printf("%-6d %-28s %-10d %-12.4g %-8d %-10.4g %-6d\n",
			i, truncate(f.Name, 28), f.Size(), f.Norm, f.K, f.Cost(), owner[i])
		shown++
	}

	totalK := 0
	for _, f := range frags {
		totalK += f.K
	}
	fmt.Printf("\nΣk = %d (target %d, realised density %.6f)\n", totalK, k, float64(totalK)/float64(ng))
	fmt.Printf("per-worker selection cost (n_g,x·log k_x):\n")
	total := 0.0
	for _, f := range frags {
		total += f.Cost()
	}
	for w := range bins {
		c := core.WorkerCost(frags, bins[w])
		fmt.Printf("  worker %-3d cost %-14.4g (%d fragments)\n", w, c, len(bins[w]))
	}
	maxC := core.MaxWorkerCost(frags, bins)
	fmt.Printf("balance: max/mean = %.3f; modeled speedup over whole-vector top-k = %.1fx (trivial bound %.1fx, linear %dx)\n",
		maxC/(total/float64(*workers)),
		core.FullCost(ng, k)/maxC,
		core.FullCost(ng, k)/core.TrivialCost(ng, k, *workers),
		*workers)
}

func buildWorkload(name string) train.Workload {
	switch name {
	case "mlp":
		return models.NewMLP(models.DefaultMLPConfig())
	case "vision":
		return models.NewVision(models.DefaultVisionConfig())
	case "langmodel":
		return models.NewText(models.DefaultTextConfig())
	case "recsys":
		return models.NewRecsys(models.DefaultRecsysConfig())
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
