// Command deft-inspect dumps DEFT's per-iteration decisions — the
// two-stage partition (Algorithm 2), the norm-proportional local k
// assignment (Algorithm 3) and the bin-packing allocation (Algorithm 4) —
// for one of the paper's model catalogs with synthetic gradients, or for a
// trainable workload's first real gradient.
//
// Usage:
//
//	deft-inspect -catalog lstm -workers 16 -density 0.001
//	deft-inspect -workload vision -workers 8 -density 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/shapes"
	"repro/internal/sparsifier"
	"repro/internal/train"
	"repro/internal/wire"
)

func main() {
	catalog := flag.String("catalog", "", "resnet18 | lstm | ncf (synthetic gradients)")
	workload := flag.String("workload", "", "mlp | vision | langmodel | recsys (real first gradient)")
	workers := flag.Int("workers", 8, "number of workers")
	density := flag.Float64("density", 0.01, "target density")
	scale := flag.Float64("scale", 0.1, "catalog scale factor")
	maxRows := flag.Int("max-rows", 24, "fragment rows to print (0 = all)")
	flag.Parse()

	var layers []sparsifier.Layer
	var grad []float64
	switch {
	case *catalog != "":
		c, ok := shapes.ByName(*catalog)
		if !ok {
			fmt.Fprintf(os.Stderr, "deft-inspect: unknown catalog %q\n", *catalog)
			os.Exit(2)
		}
		c = c.Scaled(*scale)
		layers = c.Layers()
		grad = c.SyntheticGradients(42)
	case *workload != "":
		w := buildWorkload(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		m := w.NewModel()
		params := m.Params()
		nn.ZeroGrads(params)
		m.Step(rng.New(1))
		grad = make([]float64, nn.TotalSize(params))
		train.FlattenGrads(params, grad)
		layers = train.Layout(params)
	default:
		fmt.Fprintln(os.Stderr, "deft-inspect: pass -catalog or -workload")
		os.Exit(2)
	}

	ng := len(grad)
	k := int(float64(ng) * *density)
	fmt.Printf("model: %d gradients in %d layers; workers=%d, d=%g (k=%d)\n\n",
		ng, len(layers), *workers, *density, k)

	frags := core.Partition(layers, *workers, core.PartitionOpts{SecondStage: true})
	core.ComputeNorms(frags, grad)
	core.AssignK(frags, k)
	bins := core.Allocate(frags, *workers, core.LPTPolicy)

	owner := make([]int, len(frags))
	for w, bin := range bins {
		for _, fi := range bin {
			owner[fi] = w
		}
	}

	fmt.Printf("%-6s %-28s %-10s %-12s %-8s %-10s %-6s\n",
		"frag", "layer", "size", "norm", "k", "cost", "worker")
	shown := 0
	for i, f := range frags {
		if *maxRows > 0 && shown >= *maxRows {
			fmt.Printf("... (%d more fragments)\n", len(frags)-shown)
			break
		}
		fmt.Printf("%-6d %-28s %-10d %-12.4g %-8d %-10.4g %-6d\n",
			i, truncate(f.Name, 28), f.Size(), f.Norm, f.K, f.Cost(), owner[i])
		shown++
	}

	totalK := 0
	for _, f := range frags {
		totalK += f.K
	}
	fmt.Printf("\nΣk = %d (target %d, realised density %.6f)\n", totalK, k, float64(totalK)/float64(ng))
	fmt.Printf("per-worker selection cost (n_g,x·log k_x):\n")
	total := 0.0
	for _, f := range frags {
		total += f.Cost()
	}
	for w := range bins {
		c := core.WorkerCost(frags, bins[w])
		fmt.Printf("  worker %-3d cost %-14.4g (%d fragments)\n", w, c, len(bins[w]))
	}
	maxC := core.MaxWorkerCost(frags, bins)
	fmt.Printf("balance: max/mean = %.3f; modeled speedup over whole-vector top-k = %.1fx (trivial bound %.1fx, linear %dx)\n",
		maxC/(total/float64(*workers)),
		core.FullCost(ng, k)/maxC,
		core.FullCost(ng, k)/core.TrivialCost(ng, k, *workers),
		*workers)

	printWireTable(layers, grad, *workers, *density)
}

// printWireTable runs every sparsifier scheme once on the gradient and
// reports its encoded upload payload — bytes one worker ships per
// iteration — under each internal/wire format, the automatically selected
// cheapest format, and the compression ratio against the dense fp32
// baseline.
func printWireTable(layers []sparsifier.Layer, grad []float64, workers int, density float64) {
	ng := len(grad)
	schemes := []struct {
		name string
		sp   sparsifier.Sparsifier
	}{
		{"deft", core.NewDefault()},
		{"topk", sparsifier.NewTopK()},
		{"cltk", &sparsifier.CLTK{}},
		{"sidco", &sparsifier.SIDCo{Stages: 3}},
		{"dgc", &sparsifier.DGC{}},
		{"gaussiank", sparsifier.GaussianK{}},
		{"hardthreshold", sparsifier.TuneHardThreshold(grad, density)},
		{"randk", sparsifier.RandK{}},
	}
	dense := wire.DenseBytes(ng)
	fmt.Printf("\nwire footprint per scheme (one worker-iteration upload; dense fp32 baseline %d B):\n", dense)
	fmt.Printf("%-14s %-9s %-10s %-10s %-10s %-10s %-10s %-10s %-7s\n",
		"scheme", "nnz", "density", "coo32", "coo16", "bitmap32", "bitmap16", "bytes/it", "ratio")
	vals := make([]float64, 0, ng)
	for _, s := range schemes {
		ctx := &sparsifier.Ctx{NWorkers: workers, Density: density, Layers: layers}
		idx := append([]int(nil), s.sp.Select(ctx, grad)...)
		sort.Ints(idx)
		vals = vals[:0]
		for _, ix := range idx {
			vals = append(vals, grad[ix])
		}
		best, size := wire.Pick(ng, idx, wire.Float32)
		buf, f, err := wire.AppendAuto(nil, ng, idx, vals, wire.Float32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deft-inspect: %s: wire encode failed: %v\n", s.name, err)
			os.Exit(1)
		}
		if f != best || len(buf) != size {
			fmt.Fprintf(os.Stderr, "deft-inspect: %s: encode produced (%v, %d B), Pick promised (%v, %d B)\n",
				s.name, f, len(buf), best, size)
			os.Exit(1)
		}
		fmt.Printf("%-14s %-9d %-10.6f %-10d %-10d %-10d %-10d %-10s %.1fx\n",
			s.name, len(idx), float64(len(idx))/float64(ng),
			wire.EncodedSize(wire.COO32, ng, idx),
			wire.EncodedSize(wire.COO16, ng, idx),
			wire.EncodedSize(wire.Bitmap32, ng, idx),
			wire.EncodedSize(wire.Bitmap16, ng, idx),
			fmt.Sprintf("%d (%s)", size, best),
			float64(dense)/float64(size))
	}
}

func buildWorkload(name string) train.Workload {
	switch name {
	case "mlp":
		return models.NewMLP(models.DefaultMLPConfig())
	case "vision":
		return models.NewVision(models.DefaultVisionConfig())
	case "langmodel":
		return models.NewText(models.DefaultTextConfig())
	case "recsys":
		return models.NewRecsys(models.DefaultRecsysConfig())
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
