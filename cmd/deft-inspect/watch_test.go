package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunWatchRendersLayerTable feeds runWatch the NDJSON line shapes the
// serve stream emits and asserts the live table renders every per-layer
// snapshot with allocation and norms, plus the lifecycle lines.
func TestRunWatchRendersLayerTable(t *testing.T) {
	stream := strings.Join([]string{
		`{"type":"state","state":"queued"}`,
		`{"type":"state","state":"running"}`,
		`{"type":"progress","kind":"record","iteration":0,"train_loss":0.6931,"actual_density":0.05,"error_norm":1.25,` +
			`"layers":[{"name":"hidden.w","size":4096,"k":210,"norm":0.82},{"name":"out.b","size":10,"k":1,"norm":0.03}]}`,
		`{"type":"progress","kind":"record","iteration":1,"train_loss":0.69}`,
		`{"type":"progress","kind":"eval","iteration":4,"metric":0.52}`,
		`{"type":"progress","kind":"record","iteration":4,"train_loss":0.61,"actual_density":0.05,"error_norm":1.1,` +
			`"layers":[{"name":"hidden.w","size":4096,"k":200,"norm":0.8},{"name":"out.b","size":10,"k":11,"norm":0.02}]}`,
		`{"type":"done","state":"done"}`,
	}, "\n")

	var out bytes.Buffer
	if err := runWatch(strings.NewReader(stream), &out, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"state: running",
		"iteration 0",
		"hidden.w",
		"out.b",
		"4096",
		"210",
		"eval @ 4",
		"done: done (2 layer snapshots)",
		"total",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("watch output missing %q\n%s", want, got)
		}
	}
	// Two snapshots → the layer header renders twice.
	if n := strings.Count(got, "allocation"); n != 2 {
		t.Errorf("layer table rendered %d times, want 2", n)
	}
	// Piped mode (clear=false) must not emit terminal escapes.
	if strings.Contains(got, "\033[") {
		t.Error("non-terminal output contains ANSI escapes")
	}
}

// TestRunWatchBadLine: a malformed NDJSON line is a decoding error, not a
// silent skip.
func TestRunWatchBadLine(t *testing.T) {
	err := runWatch(strings.NewReader("{not json}\n"), &bytes.Buffer{}, false)
	if err == nil {
		t.Fatal("malformed line must error")
	}
}
