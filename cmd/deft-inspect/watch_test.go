package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// watchStream is the canonical NDJSON fixture: the line shapes the serve
// stream emits, including an anomaly flag between snapshots.
var watchStream = []string{
	`{"type":"state","state":"queued"}`,
	`{"type":"state","state":"running"}`,
	`{"type":"progress","kind":"record","iteration":0,"train_loss":0.6931,"actual_density":0.05,"error_norm":1.25,` +
		`"layers":[{"name":"hidden.w","size":4096,"k":210,"norm":0.82},{"name":"out.b","size":10,"k":1,"norm":0.03}]}`,
	`{"type":"progress","kind":"record","iteration":1,"train_loss":0.69}`,
	`{"type":"progress","kind":"eval","iteration":4,"metric":0.52}`,
	`{"type":"anomaly","anomaly":{"metric":"step_time_s","iteration":4,"value":0.05,"mean":0.001,"z":12.5}}`,
	`{"type":"progress","kind":"record","iteration":4,"train_loss":0.61,"actual_density":0.05,"error_norm":1.1,` +
		`"layers":[{"name":"hidden.w","size":4096,"k":200,"norm":0.8},{"name":"out.b","size":10,"k":11,"norm":0.02}]}`,
	`{"type":"done","state":"done"}`,
}

// TestWatchRendersLayerTable feeds the watch renderer the serve stream's
// NDJSON line shapes and asserts the live table renders every per-layer
// snapshot with allocation and norms, the anomaly flag, and the lifecycle
// lines.
func TestWatchRendersLayerTable(t *testing.T) {
	var out bytes.Buffer
	st := &watchState{w: &out}
	if err := st.run(strings.NewReader(strings.Join(watchStream, "\n")), false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"state: running",
		"iteration 0",
		"hidden.w",
		"out.b",
		"4096",
		"210",
		"eval @ 4",
		"anomaly: iter 4 step_time_s = 0.05",
		"anomalies 1", // the snapshot after the flag carries the count
		"done: done (2 layer snapshots, 1 anomalies)",
		"total",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("watch output missing %q\n%s", want, got)
		}
	}
	// Two snapshots → the layer header renders twice.
	if n := strings.Count(got, "allocation"); n != 2 {
		t.Errorf("layer table rendered %d times, want 2", n)
	}
	// Piped mode (clear=false) must not emit terminal escapes.
	if strings.Contains(got, "\033[") {
		t.Error("non-terminal output contains ANSI escapes")
	}
}

// TestWatchBadLine: a malformed NDJSON line is a hard decoding error on a
// one-shot source, but a retryable truncation on a reconnectable one.
func TestWatchBadLine(t *testing.T) {
	st := &watchState{w: &bytes.Buffer{}}
	if err := st.run(strings.NewReader("{not json}\n"), false); err == nil {
		t.Fatal("malformed line must error on a strict source")
	}
	st = &watchState{w: &bytes.Buffer{}}
	if err := st.run(strings.NewReader("{not json}\n"), true); !errors.Is(err, errTruncated) {
		t.Fatalf("resumable bad line = %v, want errTruncated", err)
	}
}

// TestWatchHTTPReconnectResumes: the first connection dies mid-line after
// three events; the reconnect replays the full history and the watcher
// resumes at the fourth event — nothing rendered twice, done reached, one
// backoff sleep taken.
func TestWatchHTTPReconnectResumes(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			for _, l := range watchStream[:3] {
				fmt.Fprintln(w, l)
			}
			io.WriteString(w, `{"type":"prog`) // connection died mid-write
			return
		}
		for _, l := range watchStream {
			fmt.Fprintln(w, l)
		}
	}))
	defer ts.Close()

	var out bytes.Buffer
	var slept []time.Duration
	st := &watchState{w: &out}
	err := watchHTTP(ts.URL, st, func(d time.Duration) { slept = append(slept, d) })
	if err != nil {
		t.Fatalf("watchHTTP: %v\n%s", err, out.String())
	}
	got := out.String()
	if !st.done || !strings.Contains(got, "done: done (2 layer snapshots, 1 anomalies)") {
		t.Errorf("watch did not reach done:\n%s", got)
	}
	// The replayed prefix must not render twice.
	for _, once := range []string{"state: queued", "state: running", "eval @ 4", "anomaly:"} {
		if n := strings.Count(got, once); n != 1 {
			t.Errorf("%q rendered %d times, want 1\n%s", once, n, got)
		}
	}
	if !strings.Contains(got, "reconnecting in 250ms") {
		t.Errorf("missing reconnect notice:\n%s", got)
	}
	if len(slept) != 1 || slept[0] != watchBackoffMin {
		t.Errorf("slept %v, want one %v backoff", slept, watchBackoffMin)
	}
}

// TestWatchHTTP404IsPermanent: a missing job fails immediately — no
// backoff loop against an ID that will never exist.
func TestWatchHTTP404IsPermanent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no job"}`, http.StatusNotFound)
	}))
	defer ts.Close()
	st := &watchState{w: &bytes.Buffer{}}
	err := watchHTTP(ts.URL, st, func(time.Duration) { t.Fatal("must not sleep on a 404") })
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v, want permanent 404 failure", err)
	}
}

// TestWatchHTTPGivesUpWhenDead: a server that always 500s is abandoned
// after watchDeadRetries attempts, with the backoff growing to its cap.
func TestWatchHTTPGivesUpWhenDead(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	var slept []time.Duration
	st := &watchState{w: &bytes.Buffer{}}
	err := watchHTTP(ts.URL, st, func(d time.Duration) { slept = append(slept, d) })
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("no progress after %d attempts", watchDeadRetries)) {
		t.Fatalf("err = %v, want dead-retries bound", err)
	}
	if len(slept) != watchDeadRetries-1 {
		t.Fatalf("slept %d times, want %d", len(slept), watchDeadRetries-1)
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] < slept[i-1] {
			t.Errorf("backoff shrank without progress: %v", slept)
		}
	}
	if slept[len(slept)-1] != watchBackoffMax {
		t.Errorf("final backoff = %v, want capped at %v", slept[len(slept)-1], watchBackoffMax)
	}
}
