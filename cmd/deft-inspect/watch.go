package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs/analyze"
	"repro/internal/train"
)

// watchEvent mirrors the serve stream's NDJSON line shape (see
// internal/serve stream.go): a type tag plus an embedded train.Progress
// for progress events and an anomaly payload for detector flags.
type watchEvent struct {
	Type    string           `json:"type"`
	State   string           `json:"state"`
	Error   string           `json:"error"`
	Attempt int              `json:"attempt"`
	Anomaly *analyze.Anomaly `json:"anomaly"`
	*train.Progress
}

// errTruncated marks a line that failed to decode on a reconnectable
// source: the connection died mid-line, so the tail is a torn write to
// retry, not bad data to report.
var errTruncated = errors.New("truncated NDJSON line")

// permanentError wraps a watch error no reconnect can fix (the job does
// not exist).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

const (
	watchBackoffMin  = 250 * time.Millisecond
	watchBackoffMax  = 5 * time.Second
	watchDeadRetries = 8
)

// watchState carries rendering state across stream (re)connects. consumed
// counts fully rendered NDJSON lines: the serve event log is append-only,
// so each reconnect replays a byte-identical prefix of history and
// skipping consumed lines resumes exactly at the last seen iteration.
type watchState struct {
	w         io.Writer
	clear     bool
	consumed  int
	snapshots int
	anomalies int
	done      bool
}

// watch consumes a job's NDJSON stream — from a deft-serve
// /v1/jobs/{id}/stream URL, a file, or stdin ("-") — and renders the
// per-layer fragment-allocation table live as ProgressEvery snapshots
// arrive. HTTP sources reconnect with capped backoff until the job's done
// event; files and stdin are read once, strictly.
func watch(source string) error {
	clear := false
	if fi, err := os.Stdout.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		clear = true
	}
	st := &watchState{w: os.Stdout, clear: clear}
	switch {
	case source == "-":
		return st.run(os.Stdin, false)
	case strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://"):
		return watchHTTP(source, st, time.Sleep)
	default:
		f, err := os.Open(source)
		if err != nil {
			return err
		}
		defer f.Close()
		return st.run(f, false)
	}
}

// watchHTTP streams source until the job's done event, reconnecting with
// capped exponential backoff on EOF and transient failures (connection
// errors, torn lines, non-404 HTTP statuses). Each reconnect replays the
// job's history and st skips the consumed prefix, so rendering resumes
// where the dead connection stopped. It gives up on a 404 — the job does
// not exist and never will — or after watchDeadRetries consecutive
// attempts that yield no new events.
func watchHTTP(source string, st *watchState, sleep func(time.Duration)) error {
	backoff := watchBackoffMin
	dead := 0
	for {
		before := st.consumed
		err := watchHTTPOnce(source, st)
		if st.done {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if st.consumed > before {
			dead, backoff = 0, watchBackoffMin
		} else if dead++; dead >= watchDeadRetries {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("stream %s: no progress after %d attempts: %w", source, dead, err)
		}
		reason := "stream ended before done"
		if err != nil && !errors.Is(err, errTruncated) {
			reason = err.Error()
		}
		fmt.Fprintf(st.w, "watch: %s — reconnecting in %s\n", reason, backoff)
		sleep(backoff)
		if backoff *= 2; backoff > watchBackoffMax {
			backoff = watchBackoffMax
		}
	}
}

// watchHTTPOnce runs one connection attempt. A 404 is permanent;
// everything else that goes wrong is transient.
func watchHTTPOnce(source string, st *watchState) error {
	resp, err := http.Get(source)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return &permanentError{fmt.Errorf("stream %s: HTTP 404 (no such job)", source)}
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("stream %s: HTTP %d", source, resp.StatusCode)
	}
	return st.run(resp.Body, true)
}

// run decodes NDJSON events from r and renders them, skipping the
// already-consumed replay prefix. With resumable set, a line that fails to
// decode is a torn tail of a dropped connection (errTruncated, retried by
// the caller without advancing consumed); otherwise it is a hard error.
func (st *watchState) run(r io.Reader, resumable bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	seen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if seen++; seen <= st.consumed {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			if resumable {
				return errTruncated
			}
			return fmt.Errorf("bad NDJSON line %q: %w", line, err)
		}
		st.render(ev)
		st.consumed++
		if st.done {
			return nil
		}
	}
	return sc.Err()
}

// render writes one event's live output.
func (st *watchState) render(ev watchEvent) {
	w := st.w
	switch ev.Type {
	case "state":
		fmt.Fprintf(w, "state: %s\n", ev.State)
	case "retry":
		fmt.Fprintf(w, "retry: attempt %d (%s)\n", ev.Attempt, ev.Error)
	case "anomaly":
		st.anomalies++
		if ev.Anomaly != nil {
			fmt.Fprintf(w, "anomaly: %s\n", ev.Anomaly)
		}
	case "done":
		st.done = true
		if ev.Error != "" {
			fmt.Fprintf(w, "done: %s (%s)\n", ev.State, ev.Error)
		} else {
			fmt.Fprintf(w, "done: %s (%d layer snapshots, %d anomalies)\n",
				ev.State, st.snapshots, st.anomalies)
		}
	case "progress":
		if ev.Progress == nil {
			return
		}
		switch {
		case len(ev.Layers) > 0:
			if st.clear {
				fmt.Fprint(w, "\033[H\033[2J")
			}
			st.snapshots++
			st.renderLayers(ev.Progress)
		case ev.Kind == "eval":
			fmt.Fprintf(w, "eval @ %-6d metric = %.4f\n", ev.Iteration, ev.Metric)
		case ev.Kind == "fault":
			fmt.Fprintf(w, "fault: %s @ %d\n", ev.Fault, ev.Iteration)
		}
	}
}

// renderLayers prints one per-layer snapshot: fragment allocation (k and
// realised per-layer density, with a proportional bar) and the residual
// gradient norm per layer, headed by the run totals and the anomaly count
// flagged so far.
func (st *watchState) renderLayers(p *train.Progress) {
	w := st.w
	fmt.Fprintf(w, "iteration %-8d loss %-10.4f density %-10.6f ‖e‖ %-10.4f anomalies %d\n",
		p.Iteration, p.TrainLoss, p.ActualDensity, p.ErrorNorm, st.anomalies)
	fmt.Fprintf(w, "%-28s %10s %8s %9s %12s  %s\n", "layer", "size", "k", "k/size", "norm", "allocation")
	maxK := 1
	for _, ls := range p.Layers {
		if ls.K > maxK {
			maxK = ls.K
		}
	}
	totalSize, totalK := 0, 0
	for _, ls := range p.Layers {
		bar := strings.Repeat("█", (ls.K*24+maxK-1)/maxK)
		fmt.Fprintf(w, "%-28s %10d %8d %8.4f%% %12.5g  %s\n",
			truncate(ls.Name, 28), ls.Size, ls.K,
			100*float64(ls.K)/float64(max(ls.Size, 1)), ls.Norm, bar)
		totalSize += ls.Size
		totalK += ls.K
	}
	fmt.Fprintf(w, "%-28s %10d %8d %8.4f%%\n\n", "total", totalSize, totalK,
		100*float64(totalK)/float64(max(totalSize, 1)))
}
