package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/train"
)

// watchEvent mirrors the serve stream's NDJSON line shape (see
// internal/serve stream.go): a type tag plus an embedded train.Progress
// for progress events.
type watchEvent struct {
	Type    string `json:"type"`
	State   string `json:"state"`
	Error   string `json:"error"`
	Attempt int    `json:"attempt"`
	*train.Progress
}

// watch consumes a job's NDJSON stream — from a deft-serve
// /v1/jobs/{id}/stream URL or stdin ("-") — and renders the per-layer
// fragment-allocation table live as ProgressEvery snapshots arrive.
func watch(source string) error {
	var r io.Reader
	switch {
	case source == "-":
		r = os.Stdin
	case strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://"):
		resp, err := http.Get(source)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("stream %s: HTTP %d", source, resp.StatusCode)
		}
		r = resp.Body
	default:
		f, err := os.Open(source)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	clear := false
	if fi, err := os.Stdout.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
		clear = true
	}
	return runWatch(r, os.Stdout, clear)
}

// runWatch is the testable core of -watch: it decodes NDJSON events from
// r and writes the live rendering to w. With clear set (stdout is a
// terminal) each layer snapshot repaints the screen; otherwise snapshots
// append, which keeps piped output a plain log.
func runWatch(r io.Reader, w io.Writer, clear bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	snapshots := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("bad NDJSON line %q: %w", line, err)
		}
		switch ev.Type {
		case "state":
			fmt.Fprintf(w, "state: %s\n", ev.State)
		case "retry":
			fmt.Fprintf(w, "retry: attempt %d (%s)\n", ev.Attempt, ev.Error)
		case "done":
			if ev.Error != "" {
				fmt.Fprintf(w, "done: %s (%s)\n", ev.State, ev.Error)
			} else {
				fmt.Fprintf(w, "done: %s (%d layer snapshots)\n", ev.State, snapshots)
			}
		case "progress":
			if ev.Progress == nil {
				continue
			}
			switch {
			case len(ev.Layers) > 0:
				if clear {
					fmt.Fprint(w, "\033[H\033[2J")
				}
				snapshots++
				renderLayers(w, ev.Progress)
			case ev.Kind == "eval":
				fmt.Fprintf(w, "eval @ %-6d metric = %.4f\n", ev.Iteration, ev.Metric)
			case ev.Kind == "fault":
				fmt.Fprintf(w, "fault: %s @ %d\n", ev.Fault, ev.Iteration)
			}
		}
	}
	return sc.Err()
}

// renderLayers prints one per-layer snapshot: fragment allocation (k and
// realised per-layer density, with a proportional bar) and the residual
// gradient norm per layer.
func renderLayers(w io.Writer, p *train.Progress) {
	fmt.Fprintf(w, "iteration %-8d loss %-10.4f density %-10.6f ‖e‖ %.4f\n",
		p.Iteration, p.TrainLoss, p.ActualDensity, p.ErrorNorm)
	fmt.Fprintf(w, "%-28s %10s %8s %9s %12s  %s\n", "layer", "size", "k", "k/size", "norm", "allocation")
	maxK := 1
	for _, ls := range p.Layers {
		if ls.K > maxK {
			maxK = ls.K
		}
	}
	totalSize, totalK := 0, 0
	for _, ls := range p.Layers {
		bar := strings.Repeat("█", (ls.K*24+maxK-1)/maxK)
		fmt.Fprintf(w, "%-28s %10d %8d %8.4f%% %12.5g  %s\n",
			truncate(ls.Name, 28), ls.Size, ls.K,
			100*float64(ls.K)/float64(max(ls.Size, 1)), ls.Norm, bar)
		totalSize += ls.Size
		totalK += ls.K
	}
	fmt.Fprintf(w, "%-28s %10d %8d %8.4f%%\n\n", "total", totalSize, totalK,
		100*float64(totalK)/float64(max(totalSize, 1)))
}
