package main

import (
	"encoding/json"
	"io"
	"os"

	"repro/internal/obs/analyze"
)

// analyzeTrace loads a Chrome trace-event file (written by deft-train
// -trace or deft-serve -trace) and prints its trace-analytics report:
// phase stats, the cross-rank critical path, straggler attribution and
// step-time anomalies. Pass "-" to read the trace from stdin. The report
// is a pure function of the trace, so re-running it is byte-stable.
func analyzeTrace(path string, jsonOut bool) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := analyze.LoadChromeTrace(r)
	if err != nil {
		return err
	}
	rep := analyze.Analyze(tr, analyze.Options{})
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return rep.Fprint(os.Stdout)
}
