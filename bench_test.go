// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artefact in quick mode
// (reduced workers/iterations) and reports the wall time of a full
// regeneration; the table text itself is printed under -v via b.Log. Use
// cmd/deft-bench for the full-scale versions.
//
// Run: go test -bench=. -benchmem
package deft

import (
	"testing"

	"repro/internal/benchkit"
	"repro/internal/experiments"
)

// benchExperiment regenerates one artefact per benchmark iteration with a
// cold cache, so the reported time is an honest full-regeneration cost.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig3a(b *testing.B)  { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { benchExperiment(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)  { benchExperiment(b, "fig3c") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }

// Ablation benches for the design choices DESIGN.md §5 calls out.
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// Quantized fp16 training vs fp32 across every workload (the `quant`
// experiment backing the golden convergence fixtures).
func BenchmarkQuant(b *testing.B) { benchExperiment(b, "quant") }

// The microbenches below isolate the headline claim at kernel level on the
// LSTM catalog (scaled to 1.36M gradients, d=0.001): a whole-vector top-k
// (what Top-k/CLT-k run every iteration) vs the slowest worker's layer-wise
// selection under DEFT at n=16, plus one full training iteration of
// Algorithm 1. Bodies live in internal/benchkit so that `deft-bench -json`
// can run the identical measurements and persist them to
// BENCH_results.json.
func BenchmarkSelectWholeVectorTopK(b *testing.B) { benchkit.BenchSelectWholeVectorTopK(b) }

func BenchmarkSelectWholeVectorQuickSelect(b *testing.B) {
	benchkit.BenchSelectWholeVectorQuickSelect(b)
}

func BenchmarkSelectDEFTSlowestWorker(b *testing.B) { benchkit.BenchSelectDEFTSlowestWorker(b) }

func BenchmarkTrainIteration(b *testing.B) { benchkit.BenchTrainIteration(b) }

// Blocked-GEMM substrate benchmarks: model-realistic shapes (the MLP dense
// layers, the LSTM gate product), a ragged odd-dimension shape, the two
// transposed backward products, and a full Conv2D forward through the
// im2col + GEMM path. All are gated like every other hot path via
// deft-bench -compare.
func BenchmarkGemmMLPForward(b *testing.B) { benchkit.BenchGemmMLPForward(b) }

func BenchmarkGemmLSTMGates(b *testing.B) { benchkit.BenchGemmLSTMGates(b) }

func BenchmarkGemmOddBlocked(b *testing.B) { benchkit.BenchGemmOddBlocked(b) }

func BenchmarkGemmTransAGrad(b *testing.B) { benchkit.BenchGemmTransAGrad(b) }

func BenchmarkGemmTransBBack(b *testing.B) { benchkit.BenchGemmTransBBack(b) }

// Row-band parallel GEMM at a shape above the 2M-MAC threshold: the serial
// reference and the 4-band sharded run (bit-identical results; the
// multi-core CI job is where the 4-band case shows actual speedup).
func BenchmarkGemmParallel1(b *testing.B) { benchkit.BenchGemmParallel1(b) }

func BenchmarkGemmParallel4(b *testing.B) { benchkit.BenchGemmParallel4(b) }

func BenchmarkConvForwardPath(b *testing.B) { benchkit.BenchConvForward(b) }

// Wire codec benchmarks: encoding the LSTM fixture's selection at low
// density (COO varint regime) and high density (bitmap regime), plus the
// decode path. All three are zero-alloc in steady state.
func BenchmarkWireEncodeCOOVarint(b *testing.B) { benchkit.BenchWireEncodeCOOVarint(b) }

func BenchmarkWireEncodeBitmap(b *testing.B) { benchkit.BenchWireEncodeBitmap(b) }

func BenchmarkWireDecodeCOOVarint(b *testing.B) { benchkit.BenchWireDecodeCOOVarint(b) }
