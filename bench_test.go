// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artefact in quick mode
// (reduced workers/iterations) and reports the wall time of a full
// regeneration; the table text itself is printed under -v via b.Log. Use
// cmd/deft-bench for the full-scale versions.
//
// Run: go test -bench=. -benchmem
package deft

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/shapes"
	"repro/internal/topk"
)

// benchExperiment regenerates one artefact per benchmark iteration with a
// cold cache, so the reported time is an honest full-regeneration cost.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		experiments.ResetCache()
		tab, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.String())
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig3a(b *testing.B)  { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { benchExperiment(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)  { benchExperiment(b, "fig3c") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }

// Ablation benches for the design choices DESIGN.md §5 calls out.
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// The two microbenches below isolate the headline claim at kernel level on
// the LSTM catalog (scaled to 1.36M gradients, d=0.001): a whole-vector
// top-k (what Top-k/CLT-k run every iteration) vs the slowest worker's
// layer-wise selection under DEFT at n=16.
func selectionFixture() (frags []core.Fragment, slowest []int, grad []float64, k int) {
	catalog := shapes.LSTMWiki().Scaled(0.01)
	grad = catalog.SyntheticGradients(42)
	k = int(0.001 * float64(len(grad)))
	frags = core.Partition(catalog.Layers(), 16, core.PartitionOpts{SecondStage: true})
	core.ComputeNorms(frags, grad)
	core.AssignK(frags, k)
	bins := core.Allocate(frags, 16, core.LPTPolicy)
	best := 0.0
	for _, bin := range bins {
		if c := core.WorkerCost(frags, bin); c > best {
			best, slowest = c, bin
		}
	}
	return frags, slowest, grad, k
}

func BenchmarkSelectWholeVectorTopK(b *testing.B) {
	_, _, grad, k := selectionFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topk.HeapTopK(grad, k)
	}
}

func BenchmarkSelectDEFTSlowestWorker(b *testing.B) {
	frags, slowest, grad, _ := selectionFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SelectLayerwise(frags, slowest, grad)
	}
}
