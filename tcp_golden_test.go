// Cross-process equivalence of the TCP cluster transport, pinned at the
// highest level the repo has: the recorded golden trajectories. A run
// whose ranks are split across two nodes talking over a real localhost
// socket must reproduce the in-process fixture byte-for-byte — same
// series, same byte accounting, same derived compression — and a node
// hard-killed mid-run must be numerically indistinguishable from the
// equivalent injected drop fault.
//
// The "nodes" here are goroutine groups inside one test process, but
// nothing they exchange stays in process: every collective crosses a
// length-prefixed TCP stream, exactly as under deft-serve -join.
package deft

import (
	"bytes"
	"context"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/comm"
	"repro/internal/registry"
	"repro/internal/sparsifier"
	"repro/internal/train"
)

// nodeWorkload resolves the registry pair for a workload/sparsifier name;
// each virtual node calls it independently, exactly as two deft-serve
// processes build their own identical configs from the same spec.
func nodeWorkload(t *testing.T, workload, scheme string, density float64) (train.Workload, sparsifier.Factory, bool) {
	t.Helper()
	w, err := registry.NewWorkload(workload)
	if err != nil {
		t.Fatal(err)
	}
	factory, dense, err := registry.NewFactory(scheme, w, density)
	if err != nil {
		t.Fatal(err)
	}
	return w, factory, dense
}

// twoNodeRun executes the run with its ranks split between a leader node
// hosting [0, split) and a follower node hosting [split, workers), over
// real TCP. Segments where the cluster has shrunk to the leader's share
// or below (after the follower's ranks dropped) run leader-local.
// followerConn, when non-nil, receives the follower's live socket so the
// test can hard-kill the node. Returns the leader's result.
func twoNodeRun(t *testing.T, workload, scheme string, cfg train.Config, split int, followerConn *atomic.Pointer[net.Conn]) (*train.Result, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	leaderCfg := cfg
	leaderCfg.NewCluster = func(size int) (*comm.Cluster, error) {
		if size <= split {
			return comm.NewLeaderCluster(size, size, nil)
		}
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		return comm.NewLeaderCluster(size, split, []comm.RemotePeer{
			{Link: comm.NewFrameConn(conn), Lo: split, Hi: size},
		})
	}

	followerCfg := cfg
	followerCfg.Progress = nil  // progress and records are the leader's
	followerCfg.Recover = false // the dead node does not rejoin
	followerCfg.NewCluster = func(size int) (*comm.Cluster, error) {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, err
		}
		if followerConn != nil {
			c := conn
			followerConn.Store(&c)
		}
		return comm.NewFollowerCluster(size, split, size, comm.NewFrameConn(conn))
	}

	// Each node builds its own workload and factory from the shared names,
	// exactly as two deft-serve processes build identical configs from the
	// same spec. Both are resolved here, on the test goroutine.
	fw, ffactory, _ := nodeWorkload(t, workload, scheme, cfg.Density)
	lw, lfactory, _ := nodeWorkload(t, workload, scheme, cfg.Density)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The follower's own error is not the test's: a hard-killed
		// follower fails with "leader connection lost" by design, and in
		// the healthy case its result is the leader's twin, unrecorded.
		_, _ = train.RunContext(context.Background(), fw, ffactory, followerCfg)
	}()
	res, err := train.RunContext(context.Background(), lw, lfactory, leaderCfg)
	wg.Wait()
	return res, err
}

// TestTCPGoldenConvergence re-runs the dense fp32 mlp golden case with
// its four ranks split 2+2 across two TCP nodes and compares the full
// fixture rendering — every series, every byte count — byte-for-byte
// against the same testdata/convergence file the in-process run is
// pinned to. This is the cross-process determinism contract: moving
// ranks onto sockets changes nothing about the numbers.
func TestTCPGoldenConvergence(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("fixtures recorded on amd64; exact compare is not defined on %s", runtime.GOARCH)
	}
	c := goldenCase{
		Workload: "mlp", Sparsifier: "dense", Precision: "fp32",
		Workers: 4, LR: 0.3, Iterations: 8, Seed: 77,
	}
	res, err := twoNodeRun(t, c.Workload, c.Sparsifier, train.Config{
		Workers: c.Workers, Density: c.Density, LR: c.LR,
		Iterations: c.Iterations, EvalEvery: 4, RecordEvery: 2, Seed: c.Seed,
		DisableSparse: true, CheckSync: true,
	}, 2, nil)
	if err != nil {
		t.Fatalf("two-node run: %v", err)
	}
	if res.SocketTxBytes == 0 || res.SocketRxBytes == 0 {
		t.Fatalf("two-node run reports no socket traffic (tx=%d rx=%d) — did it actually cross TCP?",
			res.SocketTxBytes, res.SocketRxBytes)
	}
	got := (&goldenFixture{
		goldenCase:       c,
		TrainLoss:        res.TrainLoss,
		Metric:           res.Metric,
		ErrorNorm:        res.ErrorNorm,
		ActualDensity:    res.ActualDensity,
		EncodedBytes:     res.EncodedBytes,
		WireBytes:        res.WireBytes,
		DenseBytes:       res.DenseBytes,
		CompressionRatio: res.CompressionRatio(),
		NaNIterations:    res.NaNIterations,
	}).marshal(t)
	want, err := os.ReadFile(c.path())
	if err != nil {
		t.Fatalf("missing fixture %s: %v", c.path(), err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("TCP trajectory drifted from the in-process fixture %s:\n%s", c.path(), firstDiff(want, got))
	}
}

// TestTCPKillEqualsInjectedDrop: hard-killing the follower node mid-run
// (its socket torn, no farewell frames) must leave the same numeric
// trajectory as injecting drop faults for the same ranks at the same
// iteration into a plain in-process run. The comparison covers every
// deterministic numeric field; fault/recovery counters are excluded —
// the kill surfaces as one multi-rank fault where the injected plan
// fires rank-by-rank, which is exactly the bookkeeping difference the
// equivalence claim is about.
func TestTCPKillEqualsInjectedDrop(t *testing.T) {
	const (
		workers = 4
		split   = 2
		iters   = 24
	)
	var conn atomic.Pointer[net.Conn]
	var kill sync.Once
	cfg := train.Config{
		Workers: workers, Density: 0.05, LR: 0.3,
		Iterations: iters, EvalEvery: 12, RecordEvery: 1, Seed: 77,
		Recover: true,
		Progress: func(p train.Progress) {
			if p.Kind == "record" && p.Iteration >= 6 {
				kill.Do(func() {
					if c := conn.Load(); c != nil {
						(*c).Close() // hard kill: no abort, no finish, just gone
					}
				})
			}
		},
	}
	killed, err := twoNodeRun(t, "mlp", "deft", cfg, split, &conn)
	if err != nil {
		t.Fatalf("killed run: %v", err)
	}
	if len(killed.Faults) == 0 {
		t.Fatalf("killing the follower recorded no faults")
	}
	dropIter := killed.Faults[0].Iteration
	var lostRanks []int
	for _, f := range killed.Faults {
		if f.Kind != comm.FaultDrop {
			t.Fatalf("kill surfaced as %v, want drop", f.Kind)
		}
		if f.Iteration != dropIter {
			t.Fatalf("kill split across iterations %d and %d", dropIter, f.Iteration)
		}
		lostRanks = append(lostRanks, f.Rank)
	}
	t.Logf("follower kill landed as drop of ranks %v at iteration %d", lostRanks, dropIter)

	// The equivalent honest chaos schedule: the same ranks drop at the
	// same iteration, in a plain in-process run.
	plan := &comm.FaultPlan{}
	for _, r := range lostRanks {
		plan.Drops = append(plan.Drops, comm.Drop{Rank: r, Iteration: dropIter})
	}
	refCfg := cfg
	refCfg.Progress = nil
	refCfg.Faults = plan
	refCfg.NewCluster = nil
	w, factory, _ := nodeWorkload(t, "mlp", "deft", refCfg.Density)
	ref, err := train.RunContext(context.Background(), w, factory, refCfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	killedJSON, err := killed.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := ref.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(killedJSON, refJSON) {
		t.Fatalf("killed-node trajectory diverges from the injected-drop reference:\n%s",
			firstDiff(refJSON, killedJSON))
	}
	if killed.Survivors != workers-len(lostRanks) {
		t.Errorf("survivors = %d, want %d", killed.Survivors, workers-len(lostRanks))
	}
}
