package deft

import (
	"strings"
	"testing"
)

func TestFacadeTrainQuickstart(t *testing.T) {
	res := Train(NewMLPWorkload(), NewDEFTFactory(), TrainConfig{
		Workers: 4, Density: 0.05, LR: 0.3, Iterations: 30, Seed: 1,
	})
	if res.Sparsifier != "deft" {
		t.Fatalf("sparsifier %q", res.Sparsifier)
	}
	if res.TrainLoss.LastY() >= res.TrainLoss.Y[0] {
		t.Fatalf("no learning: %v -> %v", res.TrainLoss.Y[0], res.TrainLoss.LastY())
	}
	if !strings.Contains(res.Summary(), "deft") {
		t.Fatal("summary missing scheme name")
	}
}

func TestFacadeSparsifierConstructors(t *testing.T) {
	for name, f := range map[string]SparsifierFactory{
		"deft":          NewDEFTFactory(),
		"topk":          NewTopKFactory(),
		"cltk":          NewCLTKFactory(),
		"sidco":         NewSIDCoFactory(3),
		"hardthreshold": NewHardThresholdFactory(0.5),
	} {
		s := f()
		if s == nil || s.Name() == "" {
			t.Errorf("%s: bad constructor", name)
		}
	}
	if NewDEFT().Name() != "deft" {
		t.Error("NewDEFT broken")
	}
	if NewDEFTWithOptions(DEFTOptions{}).Name() != "deft" {
		t.Error("NewDEFTWithOptions broken")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	for _, w := range []Workload{
		NewMLPWorkload(), NewVisionWorkload(), NewTextWorkload(), NewRecsysWorkload(),
	} {
		m := w.NewModel()
		if len(m.Params()) == 0 {
			t.Errorf("%s: no params", w.Name())
		}
	}
}

func TestFacadeCatalogs(t *testing.T) {
	for _, name := range []string{"resnet18", "lstm", "ncf"} {
		c, ok := CatalogByName(name)
		if !ok || c.TotalSize() == 0 {
			t.Errorf("catalog %s missing", name)
		}
	}
}

func TestFacadeTuneHardThreshold(t *testing.T) {
	sample := []float64{0.1, -5, 3, 0.2, -0.3}
	th := TuneHardThreshold(sample, 0.4)
	if th != 3 {
		t.Fatalf("threshold %v, want 3", th)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 10 {
		t.Fatalf("only %d experiment ids", len(ids))
	}
	out, err := RunExperiment("table2", true)
	if err != nil || !strings.Contains(out, "table2") {
		t.Fatalf("RunExperiment: %v\n%s", err, out)
	}
	if _, err := RunExperiment("nope", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeWireCodecs(t *testing.T) {
	ng := 10000
	idx := []int{0, 17, 4096, 9999}
	vals := []float64{1, -2, 0.5, 3.25}
	buf, format, err := EncodeSparse(nil, ng, idx, vals, WireFloat32)
	if err != nil {
		t.Fatal(err)
	}
	if pf, size := PickWireFormat(ng, idx, WireFloat32); pf != format || size != len(buf) {
		t.Fatalf("Pick (%v, %d) disagrees with encode (%v, %d)", pf, size, format, len(buf))
	}
	gf, gng, gidx, gvals, err := DecodeSparseInto(buf, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gf != format || gng != ng || len(gidx) != len(idx) {
		t.Fatalf("decode header (%v, %d, %d)", gf, gng, len(gidx))
	}
	for i := range idx {
		if gidx[i] != idx[i] || gvals[i] != vals[i] {
			t.Fatalf("entry %d: (%d, %v) vs (%d, %v)", i, gidx[i], gvals[i], idx[i], vals[i])
		}
	}
	// A training run reports the wire metrics the formats exist for.
	res := Train(NewMLPWorkload(), NewCLTKFactory(), TrainConfig{
		Workers: 2, Density: 0.05, LR: 0.3, Iterations: 5, Seed: 2,
		Topology: DefaultTopology(),
	})
	if res.CompressionRatio() <= 1 || res.WireCommTime <= 0 {
		t.Fatalf("wire metrics missing: ratio %v, comm %v", res.CompressionRatio(), res.WireCommTime)
	}
}
