// Vision example: the paper's computer-vision scenario (Fig 3a / Fig 4a).
// A residual CNN is trained on the synthetic image task by four setups —
// DEFT, CLT-k, Top-k and the dense baseline — on the same simulated
// cluster; the run prints test accuracy and, crucially, the realised
// density of each sparsifier, which exposes Top-k's gradient build-up.
package main

import (
	"fmt"

	deft "repro"
)

func main() {
	const (
		workers = 8
		density = 0.01
		iters   = 160
	)
	setups := []struct {
		name    string
		factory deft.SparsifierFactory
		dense   bool
	}{
		{"deft", deft.NewDEFTFactory(), false},
		{"cltk", deft.NewCLTKFactory(), false},
		{"topk", deft.NewTopKFactory(), false},
		{"dense", nil, true},
	}

	fmt.Printf("vision workload, %d workers, d=%g\n\n", workers, density)
	fmt.Printf("%-8s %-18s %-18s %-14s\n", "scheme", "final accuracy(%)", "realised density", "build-up")
	for _, s := range setups {
		w := deft.NewVisionWorkload()
		cfg := deft.TrainConfig{
			Workers: workers, Density: density, LR: 0.15,
			Iterations: iters, EvalEvery: 40, Seed: 7,
			DisableSparse: s.dense,
		}
		res := deft.Train(w, s.factory, cfg)
		d := res.ActualDensity.MeanY()
		buildUp := "-"
		if !s.dense {
			buildUp = fmt.Sprintf("%.1fx", d/density)
		}
		if s.dense {
			d = 1
		}
		fmt.Printf("%-8s %-18.2f %-18.6f %-14s\n", s.name, res.Metric.LastY(), d, buildUp)
	}
	fmt.Println("\nexpected shape (paper Fig 3a/4a): all schemes converge; Top-k's realised")
	fmt.Println("density is a large multiple of the target, DEFT and CLT-k hold it.")
}
