// Language-model example: the paper's Fig 8 scenario. DEFT trains the LSTM
// language model at several densities; every density should reach a similar
// final perplexity, demonstrating robustness to the density setting.
package main

import (
	"fmt"

	deft "repro"
)

func main() {
	const (
		workers = 8
		iters   = 200
	)
	densities := []float64{0.1, 0.01, 0.001}

	fmt.Printf("langmodel workload (LSTM), %d workers — DEFT across densities\n\n", workers)
	fmt.Printf("%-10s %-20s %-16s\n", "density", "final perplexity", "mean density")
	for _, d := range densities {
		w := deft.NewTextWorkload()
		res := deft.Train(w, deft.NewDEFTFactory(), deft.TrainConfig{
			Workers: workers, Density: d, LR: 1.0,
			Iterations: iters, EvalEvery: 50, Seed: 3,
		})
		fmt.Printf("%-10g %-20.2f %-16.6f\n", d, res.Metric.LastY(), res.ActualDensity.MeanY())
	}

	// Dense reference.
	w := deft.NewTextWorkload()
	res := deft.Train(w, nil, deft.TrainConfig{
		Workers: workers, LR: 1.0, Iterations: iters, EvalEvery: 50, Seed: 3,
		DisableSparse: true,
	})
	fmt.Printf("%-10s %-20.2f %-16s\n", "dense", res.Metric.LastY(), "1.0")
	fmt.Println("\nexpected shape (paper Fig 8): lower density converges a bit slower but")
	fmt.Println("all densities approach the dense perplexity.")
}
