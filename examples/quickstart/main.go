// Quickstart: train a small classifier with DEFT-sparsified data-parallel
// SGD on a simulated 8-worker cluster, using only the public facade
// package. This is the 20-line tour of the API.
package main

import (
	"fmt"

	deft "repro"
)

func main() {
	workload := deft.NewMLPWorkload()

	res := deft.Train(workload, deft.NewDEFTFactory(), deft.TrainConfig{
		Workers:    8,    // simulated cluster size
		Density:    0.01, // transmit 1% of gradients per iteration
		LR:         0.3,
		Iterations: 120,
		EvalEvery:  30,
		Seed:       1,
	})

	fmt.Println(res.Summary())
	fmt.Printf("realised density: mean %.5f (target 0.01000) — no gradient build-up\n",
		res.ActualDensity.MeanY())
	fmt.Printf("final %s: %.2f\n", workload.MetricName(), res.Metric.LastY())
	fmt.Printf("wire: %.0f B/iteration encoded vs %.0f B/iteration dense fp32 — %.1fx compression\n",
		res.BytesPerIteration(), res.BytesPerIteration()*res.CompressionRatio(), res.CompressionRatio())
}
