// Recommender example: the paper's Fig 3c scenario. NCF (GMF + MLP towers)
// trains on synthetic implicit feedback with DEFT at d = 0.1 against the
// dense baseline; the metric is leave-one-out hit rate at 10, the paper's
// hr@10.
package main

import (
	"fmt"

	deft "repro"
)

func main() {
	const (
		workers = 8
		density = 0.1
		iters   = 300
	)

	fmt.Printf("recsys workload (NCF), %d workers, d=%g\n\n", workers, density)
	for _, setup := range []struct {
		name    string
		factory deft.SparsifierFactory
		dense   bool
	}{
		{"deft", deft.NewDEFTFactory(), false},
		{"dense", nil, true},
	} {
		w := deft.NewRecsysWorkload()
		res := deft.Train(w, setup.factory, deft.TrainConfig{
			Workers: workers, Density: density, LR: 1.0,
			Iterations: iters, EvalEvery: 75, Seed: 5,
			DisableSparse: setup.dense,
		})
		fmt.Printf("%s:\n", setup.name)
		for i := range res.Metric.X {
			fmt.Printf("  iter %-7.0f hr@10 = %5.1f%%\n", res.Metric.X[i], res.Metric.Y[i])
		}
	}
	fmt.Println("\nexpected shape (paper Fig 3c): DEFT's hr@10 climbs to the dense level")
	fmt.Println("(chance is ~20% with 1 positive among 51 candidates).")
}
