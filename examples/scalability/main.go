// Scalability example: the paper's Fig 9 scenario at true model scale.
// Using the exact layer-shape catalog of the LSTM/WikiText-2 model (136M
// gradients, scaled down by -scale to fit in memory/time), it measures the
// wall-clock speedup of DEFT's layer-wise selection over whole-vector
// top-k as the worker count grows, against the paper's two analytic
// curves: linear and the trivial-partitioning bound (Eq. 8/9).
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/shapes"
	"repro/internal/topk"
)

func main() {
	scale := flag.Float64("scale", 0.1, "catalog scale (0.1 → 13.6M gradients)")
	density := flag.Float64("density", 0.001, "target density (paper's LSTM setting)")
	flag.Parse()

	catalog := shapes.LSTMWiki().Scaled(*scale)
	layers := catalog.Layers()
	ng := catalog.TotalSize()
	grad := catalog.SyntheticGradients(42)
	k := int(float64(ng) * *density)

	fmt.Printf("LSTM catalog: %d gradients, %d layers, k=%d\n\n", ng, len(layers), k)

	// Baseline: whole-vector top-k, what Top-k/CLT-k compute every step.
	base := timeIt(func() { topk.HeapTopK(grad, k) })
	fmt.Printf("whole-vector top-k baseline: %v\n\n", base)

	fmt.Printf("%-9s %-8s %-20s %-15s %-15s\n", "workers", "linear", "theoretical-trivial", "deft measured", "deft modeled")
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		frags := core.Partition(layers, n, core.PartitionOpts{SecondStage: true})
		core.ComputeNorms(frags, grad)
		core.AssignK(frags, k)
		bins := core.Allocate(frags, n, core.LPTPolicy)

		var maxWorker time.Duration
		for w := 0; w < n; w++ {
			alloc := bins[w]
			d := timeIt(func() { core.SelectLayerwise(frags, alloc, grad) })
			if d > maxWorker {
				maxWorker = d
			}
		}
		fmt.Printf("%-9d %-8d %-20.1f %-15.1f %-15.1f\n",
			n, n,
			core.FullCost(ng, k)/core.TrivialCost(ng, k, n),
			float64(base)/float64(maxWorker),
			core.FullCost(ng, k)/core.MaxWorkerCost(frags, bins))
	}
	fmt.Println("\nexpected shape (paper Fig 9, Eq. 9): deft ≥ theoretical-trivial ≥ linear,")
	fmt.Println("with the gap widening as the cluster scales out.")
}

// timeIt returns the fastest of three runs.
func timeIt(fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
