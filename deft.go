// Package deft is the public API of this reproduction of "DEFT: Exploiting
// Gradient Norm Difference between Model Layers for Scalable Gradient
// Sparsification" (Yoon & Oh, ICPP 2023).
//
// The package re-exports the pieces a downstream user composes:
//
//   - the DEFT sparsifier and the baselines it is evaluated against
//     (Top-k, CLT-k, hard-threshold, SIDCo, random-k);
//   - the distributed trainer implementing error-feedback sparsified SGD
//     (Algorithm 1) over a simulated multi-worker cluster;
//   - the three workload families of the paper's evaluation (residual CNN,
//     LSTM language model, NCF recommender) plus a quickstart MLP;
//   - full-size layer-shape catalogs of the paper's exact models for
//     cost/scalability studies.
//
// Quickstart:
//
//	w := deft.NewMLPWorkload()
//	res := deft.Train(w, deft.NewDEFTFactory(), deft.TrainConfig{
//		Workers: 8, Density: 0.01, LR: 0.3, Iterations: 200,
//	})
//	fmt.Println(res.Summary())
package deft

import (
	"context"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/shapes"
	"repro/internal/sparsifier"
	"repro/internal/train"
	"repro/internal/wire"
)

// Sparsifier selects, per worker and iteration, the gradient indices to
// transmit. See the sparsifier package for the contract.
type Sparsifier = sparsifier.Sparsifier

// SparsifierFactory builds one sparsifier instance per worker.
type SparsifierFactory = sparsifier.Factory

// Ctx is the per-iteration context handed to a Sparsifier.
type Ctx = sparsifier.Ctx

// Layer describes one parameter tensor's slice of the flat gradient vector.
type Layer = sparsifier.Layer

// TrainConfig configures a distributed training run (see train.Config).
type TrainConfig = train.Config

// TrainResult is the collected output of a run (see train.Result).
type TrainResult = train.Result

// Workload builds model replicas and evaluates them.
type Workload = train.Workload

// Model is one worker's replica.
type Model = train.Model

// CostModel is the α–β communication time model of §5.3.
type CostModel = comm.CostModel

// Topology is the byte-parameterized, fabric-aware communication model:
// ring all-reduce, recursive-doubling all-gather and hierarchical/tree
// broadcast over nodes of WorkersPerNode workers.
type Topology = comm.Topology

// DefaultTopology approximates the paper's 4-GPU-per-node, 10 GbE cluster.
func DefaultTopology() Topology { return comm.DefaultTopology() }

// WireFormat identifies one sparse wire encoding (COO varint or bitmap
// index block, fp32 or fp16 values).
type WireFormat = wire.Format

// WirePrecision selects the value quantization of the automatic format
// choice.
type WirePrecision = wire.Precision

// Wire format and precision constants, re-exported from internal/wire.
const (
	WireCOO32    = wire.COO32
	WireCOO16    = wire.COO16
	WireBitmap32 = wire.Bitmap32
	WireBitmap16 = wire.Bitmap16

	WireFloat32 = wire.Float32
	WireFloat16 = wire.Float16
)

// EncodeSparse appends the cheapest encoding of a sparse gradient slice
// (strictly increasing idx over a length-ng vector, parallel values) to
// dst and returns the extended buffer and the chosen format. Steady-state
// zero-alloc when dst capacity suffices.
func EncodeSparse(dst []byte, ng int, idx []int, values []float64, prec WirePrecision) ([]byte, WireFormat, error) {
	return wire.AppendAuto(dst, ng, idx, values, prec)
}

// DecodeSparseInto decodes a payload produced by EncodeSparse into
// caller-owned slices, growing them only on capacity misses.
func DecodeSparseInto(buf []byte, idx []int, values []float64) (WireFormat, int, []int, []float64, error) {
	return wire.DecodeInto(buf, idx, values)
}

// PickWireFormat returns the cheapest wire format for the given index set
// and its exact encoded size in bytes, without encoding.
func PickWireFormat(ng int, idx []int, prec WirePrecision) (WireFormat, int) {
	return wire.Pick(ng, idx, prec)
}

// DEFTOptions configures the DEFT sparsifier (partitioning, allocation
// policy, k-assignment ablations).
type DEFTOptions = core.Options

// Train runs error-feedback sparsified SGD (Algorithm 1) on a simulated
// cluster and returns the collected metrics.
func Train(w Workload, factory SparsifierFactory, cfg TrainConfig) *TrainResult {
	return train.Run(w, factory, cfg)
}

// TrainProgress is one streamed training event (see TrainConfig.Progress).
type TrainProgress = train.Progress

// TrainContext is Train with cancellation: when ctx is cancelled the
// simulated cluster aborts mid-iteration and the partial result is
// returned with the ctx error. Set TrainConfig.Progress to observe the
// run live.
func TrainContext(ctx context.Context, w Workload, factory SparsifierFactory, cfg TrainConfig) (*TrainResult, error) {
	return train.RunContext(ctx, w, factory, cfg)
}

// NewDEFT returns a DEFT sparsifier with the paper's configuration:
// two-stage partitioning, norm-proportional local k, LPT bin packing.
func NewDEFT() Sparsifier { return core.NewDefault() }

// NewDEFTWithOptions returns a DEFT sparsifier with explicit options.
func NewDEFTWithOptions(opts DEFTOptions) Sparsifier { return core.New(opts) }

// NewDEFTFactory returns a per-worker factory for the paper-configured DEFT.
func NewDEFTFactory() SparsifierFactory { return core.Factory(core.DefaultOptions()) }

// NewTopKFactory returns the classical local Top-k sparsifier (suffers
// gradient build-up).
func NewTopKFactory() SparsifierFactory {
	return func() Sparsifier { return sparsifier.NewTopK() }
}

// NewCLTKFactory returns the cyclic local top-k sparsifier of Chen et al.
func NewCLTKFactory() SparsifierFactory {
	return func() Sparsifier { return &sparsifier.CLTK{} }
}

// NewSIDCoFactory returns the statistical threshold sparsifier of
// Abdelmoniem et al. with the given number of fitting stages (3 in the
// reference implementation).
func NewSIDCoFactory(stages int) SparsifierFactory {
	return func() Sparsifier { return &sparsifier.SIDCo{Stages: stages} }
}

// NewHardThresholdFactory returns a hard-threshold sparsifier with a fixed
// threshold (tune it with TuneHardThreshold).
func NewHardThresholdFactory(threshold float64) SparsifierFactory {
	return func() Sparsifier { return &sparsifier.HardThreshold{Threshold: threshold} }
}

// NewDGCFactory returns the sampling-based top-k selection of Deep
// Gradient Compression (Lin et al.); sampleRatio <= 0 uses the default.
func NewDGCFactory(sampleRatio float64) SparsifierFactory {
	return func() Sparsifier { return &sparsifier.DGC{SampleRatio: sampleRatio} }
}

// NewGaussianKFactory returns the Gaussian-fit threshold sparsifier of Shi
// et al.
func NewGaussianKFactory() SparsifierFactory {
	return func() Sparsifier { return sparsifier.GaussianK{} }
}

// NewRandKFactory returns the random-k control sparsifier.
func NewRandKFactory() SparsifierFactory {
	return func() Sparsifier { return sparsifier.RandK{} }
}

// TuneHardThreshold picks the threshold reaching the target density on a
// sample gradient vector.
func TuneHardThreshold(sample []float64, density float64) float64 {
	return sparsifier.TuneHardThreshold(sample, density).Threshold
}

// NewMLPWorkload returns the quickstart MLP classification workload.
func NewMLPWorkload() Workload { return models.NewMLP(models.DefaultMLPConfig()) }

// NewVisionWorkload returns the residual-CNN vision workload (the paper's
// ResNet-18/CIFAR-10 slot).
func NewVisionWorkload() Workload { return models.NewVision(models.DefaultVisionConfig()) }

// NewTextWorkload returns the LSTM language-modelling workload (the
// paper's LSTM/WikiText-2 slot).
func NewTextWorkload() Workload { return models.NewText(models.DefaultTextConfig()) }

// NewRecsysWorkload returns the NCF recommendation workload (the paper's
// NCF/MovieLens-20M slot).
func NewRecsysWorkload() Workload { return models.NewRecsys(models.DefaultRecsysConfig()) }

// Catalog is a full-size layer-shape catalog of one of the paper's models.
type Catalog = shapes.Catalog

// CatalogByName returns the catalog for "resnet18", "lstm" or "ncf".
func CatalogByName(name string) (Catalog, bool) { return shapes.ByName(name) }

// ExperimentIDs lists the reproducible paper artefacts (tables/figures).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table/figure by id ("fig9",
// "table1", ...). quick shrinks worker counts and iteration budgets.
func RunExperiment(id string, quick bool) (string, error) {
	tab, err := experiments.Run(id, experiments.Options{Quick: quick})
	if err != nil {
		return "", err
	}
	return tab.String(), nil
}

// ExperimentTable is a machine-readable experiment artefact (it marshals
// to the JSON form the deft-serve job service returns).
type ExperimentTable = experiments.Table

// RunExperimentContext regenerates one paper artefact under a
// cancellation context and returns the structured table; cancelling ctx
// aborts the underlying training runs mid-iteration.
func RunExperimentContext(ctx context.Context, id string, quick bool) (*ExperimentTable, error) {
	return experiments.RunContext(ctx, id, experiments.Options{Quick: quick})
}
