// Golden convergence fixtures: the recorded, deterministic end-to-end
// training trajectory of every workload × representative scheme ×
// precision, compared EXACTLY against testdata/convergence/*.json.
//
// Every numeric change to the training stack — a new sampler, a kernel
// rewrite, a quantization tweak — shows up here as an explicit, reviewed
// diff of expectations instead of silent drift. When a change is
// intentional, regenerate and review:
//
//	go test -run TestGoldenConvergence -update .
//	git diff testdata/convergence/
//
// The fixtures record only the deterministic numerics (series, byte
// accounting, derived compression) — never wall-clock fields. They are
// recorded on linux/amd64; Go's float64 arithmetic does not fuse FMAs on
// that target, so the values are stable across amd64 machines.
package deft

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/registry"
	"repro/internal/stats"
	"repro/internal/train"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/convergence fixtures with freshly trained trajectories")

// goldenCase is one recorded configuration. The config block is part of
// the fixture, so a fixture can never silently drift away from the run
// that produces it.
type goldenCase struct {
	Workload   string  `json:"workload"`
	Sparsifier string  `json:"sparsifier"`
	Precision  string  `json:"precision"`
	Workers    int     `json:"workers"`
	Density    float64 `json:"density"`
	LR         float64 `json:"lr"`
	Iterations int     `json:"iterations"`
	Seed       uint64  `json:"seed"`
}

// goldenFixture is the serialized expectation: the case plus every
// deterministic numeric output of the run.
type goldenFixture struct {
	goldenCase
	TrainLoss        stats.Series `json:"train_loss"`
	Metric           stats.Series `json:"metric"`
	ErrorNorm        stats.Series `json:"error_norm"`
	ActualDensity    stats.Series `json:"actual_density"`
	EncodedBytes     stats.Series `json:"encoded_bytes"`
	WireBytes        int64        `json:"wire_bytes"`
	DenseBytes       int64        `json:"dense_bytes"`
	CompressionRatio float64      `json:"compression_ratio"`
	NaNIterations    int          `json:"nan_iterations"`
}

// goldenCases enumerates all four workloads × {deft, topk} × {fp32, fp16}
// plus the dense fp32 reference — 20 fixtures. Scale is chosen so the
// whole suite trains in a few seconds while every code path (conv GEMMs,
// LSTM steps, embedding scatter, fp16 encode→decode) still runs.
func goldenCases() []goldenCase {
	lr := map[string]float64{"mlp": 0.3, "vision": 0.15, "langmodel": 1.0, "recsys": 1.0}
	var cases []goldenCase
	for _, w := range registry.Workloads() {
		for _, scheme := range []string{"deft", "topk"} {
			for _, prec := range registry.Precisions() {
				cases = append(cases, goldenCase{
					Workload: w, Sparsifier: scheme, Precision: prec,
					Workers: 4, Density: 0.05, LR: lr[w], Iterations: 8, Seed: 77,
				})
			}
		}
		cases = append(cases, goldenCase{
			Workload: w, Sparsifier: "dense", Precision: "fp32",
			Workers: 4, LR: lr[w], Iterations: 8, Seed: 77,
		})
	}
	return cases
}

func (c goldenCase) name() string {
	return fmt.Sprintf("%s_%s_%s", c.Workload, c.Sparsifier, c.Precision)
}

func (c goldenCase) path() string {
	return filepath.Join("testdata", "convergence", c.name()+".json")
}

// run trains the case and packages the deterministic outputs.
func (c goldenCase) run(t *testing.T) *goldenFixture {
	t.Helper()
	w, err := registry.NewWorkload(c.Workload)
	if err != nil {
		t.Fatal(err)
	}
	factory, dense, err := registry.NewFactory(c.Sparsifier, w, c.Density)
	if err != nil {
		t.Fatal(err)
	}
	quantize, err := registry.ParsePrecision(c.Precision)
	if err != nil {
		t.Fatal(err)
	}
	res := train.Run(w, factory, train.Config{
		Workers: c.Workers, Density: c.Density, LR: c.LR,
		Iterations: c.Iterations, EvalEvery: 4, RecordEvery: 2, Seed: c.Seed,
		Quantize: quantize, DisableSparse: dense, CheckSync: true,
	})
	return &goldenFixture{
		goldenCase:       c,
		TrainLoss:        res.TrainLoss,
		Metric:           res.Metric,
		ErrorNorm:        res.ErrorNorm,
		ActualDensity:    res.ActualDensity,
		EncodedBytes:     res.EncodedBytes,
		WireBytes:        res.WireBytes,
		DenseBytes:       res.DenseBytes,
		CompressionRatio: res.CompressionRatio(),
		NaNIterations:    res.NaNIterations,
	}
}

// marshal renders a fixture in the canonical on-disk form. encoding/json
// prints float64 in the shortest representation that round-trips, so byte
// equality of the rendered forms is bit equality of every number.
func (f *goldenFixture) marshal(t *testing.T) []byte {
	t.Helper()
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestGoldenConvergence trains every golden case at its fixed seed and
// compares the trajectory byte-for-byte against the recorded fixture.
func TestGoldenConvergence(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// Go fuses float64 multiply-adds on arm64/ppc64, which perturbs
		// every trajectory; the fixtures are only meaningful where they
		// were recorded.
		t.Skipf("fixtures recorded on amd64; exact compare is not defined on %s", runtime.GOARCH)
	}
	for _, c := range goldenCases() {
		t.Run(c.name(), func(t *testing.T) {
			got := c.run(t).marshal(t)
			path := c.path()
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (record with: go test -run TestGoldenConvergence -update .): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trajectory drifted from %s:\n%s\nIf the change is intentional, regenerate with -update and review the git diff.",
					path, firstDiff(want, got))
			}
		})
	}
}

// firstDiff renders the first differing line pair of two fixture texts.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g []byte
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf("line %d:\n  recorded: %s\n  got:      %s", i+1, w, g)
		}
	}
	return "(no line diff: length mismatch)"
}

// TestGoldenCoversAllWorkloadsAndPrecisions guards the fixture matrix
// itself: every registry workload appears at both precisions, so a
// workload or precision added to the registry without a recorded fixture
// fails here rather than silently going unpinned.
func TestGoldenCoversAllWorkloadsAndPrecisions(t *testing.T) {
	seen := map[string]map[string]bool{}
	for _, c := range goldenCases() {
		if seen[c.Workload] == nil {
			seen[c.Workload] = map[string]bool{}
		}
		seen[c.Workload][c.Precision] = true
	}
	for _, w := range registry.Workloads() {
		for _, p := range registry.Precisions() {
			if !seen[w][p] {
				t.Errorf("no golden fixture for workload %q at precision %q", w, p)
			}
		}
	}
}
